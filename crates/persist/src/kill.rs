//! Deterministic kill-point injection for crash-recovery tests.
//!
//! With the `testing` feature, a test arms one [`KillPoint`] with a
//! countdown; when the durable apply path reaches that point for the
//! n-th time, [`fire`] returns a *simulated-crash* I/O error. The caller
//! propagates it and the test then drops the half-dead state and runs
//! recovery — exactly what a `kill -9` at that instant would leave on
//! disk (the [`KillPoint::MidWalAppend`] point additionally truncates
//! the record being written, modeling a torn tail).
//!
//! Without the feature every hook compiles to an inlined `Ok(())` — the
//! production binary carries no branch.

use std::io;

/// Where the durable apply path can be made to crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Before anything is written to the WAL.
    BeforeWalAppend = 1,
    /// Mid-record: only a prefix of the WAL record reaches the file — a
    /// torn tail.
    MidWalAppend = 2,
    /// After the record is written but before `fsync`.
    BeforeWalSync = 3,
    /// After `fsync`, before the batch is applied to the index.
    BeforeApply = 4,
    /// Before the snapshot temp file is written.
    BeforeSnapshotWrite = 5,
    /// After the temp file is written and fsynced, before the rename.
    BeforeSnapshotRename = 6,
    /// After the rename, before the WAL is pruned.
    AfterSnapshotRename = 7,
}

/// Every kill point, in path order — what the recovery proptest sweeps.
pub const ALL_KILL_POINTS: [KillPoint; 7] = [
    KillPoint::BeforeWalAppend,
    KillPoint::MidWalAppend,
    KillPoint::BeforeWalSync,
    KillPoint::BeforeApply,
    KillPoint::BeforeSnapshotWrite,
    KillPoint::BeforeSnapshotRename,
    KillPoint::AfterSnapshotRename,
];

/// Marker in simulated-crash errors; [`is_simulated_crash`] matches it.
pub const SIMULATED_CRASH: &str = "simulated crash (tir-persist kill point)";

/// True if `e` is a kill-point crash rather than a real I/O failure.
pub fn is_simulated_crash(e: &io::Error) -> bool {
    e.to_string().contains(SIMULATED_CRASH)
}

#[cfg(feature = "testing")]
mod armed {
    use super::KillPoint;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Armed point (0 = disarmed) and remaining visits before firing,
    /// packed into two atomics. SeqCst throughout: this is test-only
    /// control state, clarity beats cycles.
    pub static POINT: AtomicU64 = AtomicU64::new(0);
    pub static COUNTDOWN: AtomicU64 = AtomicU64::new(0);

    /// Arms `point` to fire on its `after + 1`-th visit.
    pub fn arm(point: KillPoint, after: u64) {
        COUNTDOWN.store(after, Ordering::SeqCst);
        POINT.store(point as u64, Ordering::SeqCst);
    }

    /// Disarms everything.
    pub fn disarm() {
        POINT.store(0, Ordering::SeqCst);
    }

    /// True (exactly once) when `point` should crash now.
    pub fn triggered(point: KillPoint) -> bool {
        if POINT.load(Ordering::SeqCst) != point as u64 {
            return false;
        }
        // `after` visits pass; the next one fires and disarms.
        let prev = COUNTDOWN.fetch_sub(1, Ordering::SeqCst);
        if prev == 0 {
            POINT.store(0, Ordering::SeqCst);
            COUNTDOWN.store(0, Ordering::SeqCst);
            return true;
        }
        false
    }
}

/// Arms `point` to fire on its `after + 1`-th visit (`testing` only).
#[cfg(feature = "testing")]
pub fn arm(point: KillPoint, after: u64) {
    armed::arm(point, after);
}

/// Disarms all kill points (`testing` only).
#[cfg(feature = "testing")]
pub fn disarm() {
    armed::disarm();
}

/// Crash check: returns the simulated-crash error when the armed point
/// triggers, `Ok(())` otherwise.
#[cfg(feature = "testing")]
pub fn fire(point: KillPoint) -> io::Result<()> {
    if armed::triggered(point) {
        return Err(io::Error::other(SIMULATED_CRASH));
    }
    Ok(())
}

/// Production build: kill points compile away.
#[cfg(not(feature = "testing"))]
#[inline(always)]
pub fn fire(_point: KillPoint) -> io::Result<()> {
    Ok(())
}

#[cfg(all(test, feature = "testing"))]
mod tests {
    use super::*;

    #[test]
    fn fires_once_after_countdown() {
        disarm();
        arm(KillPoint::BeforeApply, 2);
        assert!(fire(KillPoint::BeforeWalSync).is_ok(), "other points pass");
        assert!(fire(KillPoint::BeforeApply).is_ok());
        assert!(fire(KillPoint::BeforeApply).is_ok());
        let e = fire(KillPoint::BeforeApply).expect_err("third visit crashes");
        assert!(is_simulated_crash(&e));
        assert!(
            fire(KillPoint::BeforeApply).is_ok(),
            "disarmed after firing"
        );
        disarm();
    }
}
