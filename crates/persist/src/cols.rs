//! Safe zero-copy typed views over little-endian byte columns.
//!
//! A snapshot section holding a `u32`/`u64` SoA column is just bytes;
//! these wrappers give it typed, bounds-checked access without copying
//! and without `unsafe` — `from_le_bytes` over a 4/8-byte window
//! compiles to a plain load on little-endian targets.

/// A borrowed little-endian `u32` column.
#[derive(Debug, Clone, Copy)]
pub struct U32Col<'a>(&'a [u8]);

impl<'a> U32Col<'a> {
    /// Wraps `bytes`; fails unless the length is a multiple of 4.
    pub fn new(bytes: &'a [u8]) -> Option<U32Col<'a>> {
        if bytes.len().is_multiple_of(4) {
            Some(U32Col(bytes))
        } else {
            None
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len() / 4
    }

    /// True if the column has no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Element `i`; panics past the end like slice indexing.
    pub fn get(&self, i: usize) -> u32 {
        let b = &self.0[i * 4..i * 4 + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Iterates the column in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Binary search in an ascending column, with `slice::binary_search`
    /// semantics.
    pub fn binary_search(&self, x: u32) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let v = self.get(mid);
            if v < x {
                lo = mid + 1;
            } else if v > x {
                hi = mid;
            } else {
                return Ok(mid);
            }
        }
        Err(lo)
    }

    /// Copies the column onto the heap (cold paths only).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

/// A borrowed little-endian `u64` column.
#[derive(Debug, Clone, Copy)]
pub struct U64Col<'a>(&'a [u8]);

impl<'a> U64Col<'a> {
    /// Wraps `bytes`; fails unless the length is a multiple of 8.
    pub fn new(bytes: &'a [u8]) -> Option<U64Col<'a>> {
        if bytes.len().is_multiple_of(8) {
            Some(U64Col(bytes))
        } else {
            None
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len() / 8
    }

    /// True if the column has no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Element `i`; panics past the end like slice indexing.
    pub fn get(&self, i: usize) -> u64 {
        let b = &self.0[i * 8..i * 8 + 8];
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Iterates the column in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.0
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Copies the column onto the heap (cold paths only).
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }
}

/// Appends `v` to a byte buffer in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` to a byte buffer in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` at byte offset `at`, if in bounds.
pub fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let b = bytes.get(at..at + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Reads a `u64` at byte offset `at`, if in bounds.
pub fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let b = bytes.get(at..at + 8)?;
    Some(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip_and_search() {
        let vals = [3u32, 9, 12, 900, 7_000_000];
        let mut buf = Vec::new();
        for &v in &vals {
            put_u32(&mut buf, v);
        }
        let col = U32Col::new(&buf).expect("aligned");
        assert_eq!(col.len(), vals.len());
        assert_eq!(col.to_vec(), vals);
        assert_eq!(col.binary_search(12), Ok(2));
        assert_eq!(col.binary_search(13), Err(3));
        assert_eq!(col.binary_search(0), Err(0));
        assert_eq!(col.binary_search(8_000_000), Err(5));
    }

    #[test]
    fn u64_roundtrip() {
        let vals = [0u64, u64::MAX, 42, 1 << 40];
        let mut buf = Vec::new();
        for &v in &vals {
            put_u64(&mut buf, v);
        }
        let col = U64Col::new(&buf).expect("aligned");
        assert_eq!(col.to_vec(), vals);
        assert_eq!(col.get(1), u64::MAX);
    }

    #[test]
    fn misaligned_lengths_are_rejected() {
        assert!(U32Col::new(&[1, 2, 3]).is_none());
        assert!(U64Col::new(&[1, 2, 3, 4]).is_none());
        assert!(U32Col::new(&[]).is_some());
    }

    #[test]
    fn offset_reads() {
        let mut buf = vec![0xEE];
        put_u32(&mut buf, 77);
        put_u64(&mut buf, 1 << 33);
        assert_eq!(read_u32(&buf, 1), Some(77));
        assert_eq!(read_u64(&buf, 5), Some(1 << 33));
        assert_eq!(read_u32(&buf, 100), None);
    }
}
