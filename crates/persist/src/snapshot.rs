//! The versioned, checksummed on-disk snapshot format and the
//! [`Persist`] trait.
//!
//! ## File layout (little-endian throughout)
//!
//! | range | contents |
//! |-------|----------|
//! | `0..64` | header: magic `TIRSNAP1`, format version, index kind, epoch, live count, section count, file length, CRC32 over header+table |
//! | `64..832` | section table: 24 slots × 32 B (`id, offset, len, crc32`) |
//! | `832..` | sections, each padded to a 64-byte-aligned offset |
//!
//! Sections are plain SoA columns:
//!
//! | id | section | column type |
//! |----|---------|-------------|
//! | 1 | META — domain, index config, column lengths | fixed 48 B |
//! | 10/11/12 | dictionary term offsets / UTF-8 blob / frequencies | `u32 / u8 / u32` |
//! | 20–24 | catalog ids / starts / ends / desc offsets / desc elems | `u32 / u64 / u64 / u32 / u32` |
//! | 30–34 | canonical postings: elems / offsets / ids / starts / ends | `u32 / u32 / u32 / u64 / u64` |
//! | 40–44 | HINT partition directory: elems / division offsets / packed level·kind / keys / lengths | `u32 ×5` |
//!
//! The **canonical postings** sections hold every live posting sorted by
//! `(element, id)` — exactly the [`CompactTemporalInverted`] layout — so
//! *any* index's snapshot can be queried zero-copy through
//! [`MappedPostings`] without deserializing a posting onto the heap.
//! Tombstoned postings are dropped at write time: snapshotting compacts.
//!
//! Writing is atomic: callers write to a temp file (the writer fsyncs on
//! [`SnapshotWriter::finish`]), then rename over `snapshot.tir` and
//! fsync the directory — a crash leaves either the old snapshot or the
//! new one, never a torn hybrid. [`SnapshotFile::open`] verifies the
//! magic, version, file length, and every CRC before handing out data;
//! corrupt, truncated, or version-skewed files are rejected with a
//! path-addressed [`SnapshotError::Corrupt`].

use std::fs::File;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

use tir_core::{BruteForce, Object, Tif, TifHint, TifHintConfig, TimeTravelQuery};
use tir_invidx::{live, raw, CompactTemporalInverted, Dictionary, Kernel, QueryScratch};

use crate::cols::{put_u32, put_u64, U32Col, U64Col};
use crate::crc::{crc32, Crc32};
use crate::mmap::{Bytes, LoadMode};

/// First 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"TIRSNAP1";
/// Current format version; files with any other version are rejected.
pub const FORMAT_VERSION: u32 = 1;
/// Section payloads start at offsets aligned to this many bytes.
pub const SECTION_ALIGN: u64 = 64;
/// Fixed capacity of the section table.
pub const MAX_SECTIONS: usize = 24;
/// Byte length of the header.
const HEADER_LEN: u64 = 64;
/// Byte length of one section-table entry.
const ENTRY_LEN: u64 = 32;
/// Where section payloads begin (64 + 24·32 = 832, itself 64-aligned).
const PAYLOAD_START: u64 = HEADER_LEN + MAX_SECTIONS as u64 * ENTRY_LEN;

/// Section ids.
pub mod section {
    /// Fixed-size metadata (domain, config, column lengths).
    pub const META: u32 = 1;
    /// Dictionary term offsets (`len+1` × u32).
    pub const DICT_OFFS: u32 = 10;
    /// Dictionary UTF-8 term blob.
    pub const DICT_BLOB: u32 = 11;
    /// Dictionary document frequencies (`len` × u32).
    pub const DICT_FREQ: u32 = 12;
    /// Catalog object ids, ascending.
    pub const CAT_IDS: u32 = 20;
    /// Catalog lifespan starts.
    pub const CAT_STS: u32 = 21;
    /// Catalog lifespan ends.
    pub const CAT_ENDS: u32 = 22;
    /// Catalog description offsets (`len+1` × u32).
    pub const CAT_DESC_OFFS: u32 = 23;
    /// Catalog description element ids, concatenated.
    pub const CAT_DESC: u32 = 24;
    /// Postings: distinct elements, ascending.
    pub const POST_ELEMS: u32 = 30;
    /// Postings: per-element offsets (`elems+1` × u32).
    pub const POST_OFFS: u32 = 31;
    /// Postings: object ids, ascending within each element.
    pub const POST_IDS: u32 = 32;
    /// Postings: lifespan starts, parallel to ids.
    pub const POST_STS: u32 = 33;
    /// Postings: lifespan ends, parallel to ids.
    pub const POST_ENDS: u32 = 34;
    /// HINT directory: elements with a per-element HINT.
    pub const HINT_ELEMS: u32 = 40;
    /// HINT directory: per-element division offsets (`elems+1` × u32).
    pub const HINT_DIV_OFFS: u32 = 41;
    /// HINT directory: packed `level·4 + kind` per division.
    pub const HINT_DIV_LEVELS: u32 = 42;
    /// HINT directory: partition key `j` per division.
    pub const HINT_DIV_KEYS: u32 = 43;
    /// HINT directory: stored entry count per division.
    pub const HINT_DIV_LENS: u32 = 44;
}

/// What kind of index a snapshot stores — the format tag dispatched on
/// at load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// [`Tif`].
    Tif = 1,
    /// [`TifHint`] with the binary-search strategy.
    TifHintBs = 2,
    /// [`TifHint`] with the merge-sort strategy.
    TifHintMs = 3,
    /// A bare [`CompactTemporalInverted`].
    CompactTemporal = 4,
    /// The [`BruteForce`] oracle (tests and recovery verification).
    BruteForce = 5,
}

impl IndexKind {
    /// Parses the header tag.
    pub fn from_u32(v: u32) -> Option<IndexKind> {
        match v {
            1 => Some(IndexKind::Tif),
            2 => Some(IndexKind::TifHintBs),
            3 => Some(IndexKind::TifHintMs),
            4 => Some(IndexKind::CompactTemporal),
            5 => Some(IndexKind::BruteForce),
            _ => None,
        }
    }

    /// The CLI method name of this kind.
    pub fn method_name(&self) -> &'static str {
        match self {
            IndexKind::Tif => "tif",
            IndexKind::TifHintBs => "tif-hint-bs",
            IndexKind::TifHintMs => "tif-hint-ms",
            IndexKind::CompactTemporal => "compact-temporal",
            IndexKind::BruteForce => "brute-force",
        }
    }
}

/// Why a snapshot could not be read.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read.
    Io(io::Error),
    /// The file is corrupt, truncated, or version-skewed. `at` is a
    /// path-addressed location (e.g. `snapshot/postings/elem[3]`).
    Corrupt {
        /// Path-addressed location of the violation.
        at: String,
        /// Human-readable description.
        msg: String,
    },
}

impl SnapshotError {
    fn corrupt(at: impl Into<String>, msg: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupt {
            at: at.into(),
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o: {e}"),
            SnapshotError::Corrupt { at, msg } => write!(f, "{at}: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

impl From<SnapshotError> for io::Error {
    fn from(e: SnapshotError) -> io::Error {
        match e {
            SnapshotError::Io(e) => e,
            // analyze:allow(hot-path-alloc): error-path formatting during snapshot load; queries never construct SnapshotErrors
            corrupt => io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string()),
        }
    }
}

/// Parsed header + META fields of a snapshot.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotMeta {
    /// Index kind tag.
    pub kind: IndexKind,
    /// Epoch the snapshot captures.
    pub epoch: u64,
    /// Live objects at that epoch.
    pub live: u64,
    /// Time domain minimum.
    pub domain_min: u64,
    /// Time domain maximum.
    pub domain_max: u64,
    /// Index-specific config word A (tIF+HINT: strategy, 1=bs 2=ms).
    pub config_a: u32,
    /// Index-specific config word B (tIF+HINT: `m`).
    pub config_b: u32,
    /// Total canonical postings.
    pub postings: u64,
    /// Dictionary entries.
    pub dict_len: u64,
    /// Catalog entries.
    pub catalog_len: u64,
}

struct SectionEntry {
    id: u32,
    offset: u64,
    len: u64,
    crc: u32,
}

/// Streaming snapshot writer over a temp file. Sections append in call
/// order; [`SnapshotWriter::finish`] seeks back, writes the header and
/// table, and fsyncs.
pub struct SnapshotWriter {
    file: File,
    sections: Vec<SectionEntry>,
    pos: u64,
}

impl SnapshotWriter {
    /// Creates (truncating) the file at `path` and reserves header space.
    pub fn create(path: &Path) -> io::Result<SnapshotWriter> {
        let mut file = File::create(path)?;
        file.write_all(&vec![0u8; PAYLOAD_START as usize])?;
        Ok(SnapshotWriter {
            file,
            sections: Vec::new(),
            pos: PAYLOAD_START,
        })
    }

    /// Appends one section, padding to the alignment boundary first.
    pub fn section(&mut self, id: u32, bytes: &[u8]) -> io::Result<()> {
        if self.sections.len() == MAX_SECTIONS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "snapshot section table full",
            ));
        }
        let aligned = self.pos.div_ceil(SECTION_ALIGN) * SECTION_ALIGN;
        if aligned > self.pos {
            let pad = vec![0u8; (aligned - self.pos) as usize];
            self.file.write_all(&pad)?;
            self.pos = aligned;
        }
        self.file.write_all(bytes)?;
        self.sections.push(SectionEntry {
            id,
            offset: aligned,
            len: bytes.len() as u64,
            crc: crc32(bytes),
        });
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Writes the header + section table and fsyncs the file.
    pub fn finish(mut self, kind: IndexKind, epoch: u64, live: u64) -> io::Result<()> {
        let mut head = Vec::with_capacity(PAYLOAD_START as usize);
        head.extend_from_slice(&MAGIC);
        put_u32(&mut head, FORMAT_VERSION);
        put_u32(&mut head, kind as u32);
        put_u64(&mut head, epoch);
        put_u64(&mut head, live);
        put_u32(&mut head, self.sections.len() as u32);
        put_u64(&mut head, self.pos);
        let crc_at = head.len();
        put_u32(&mut head, 0); // CRC placeholder
        head.resize(HEADER_LEN as usize, 0);
        for s in &self.sections {
            put_u32(&mut head, s.id);
            put_u32(&mut head, 0);
            put_u64(&mut head, s.offset);
            put_u64(&mut head, s.len);
            put_u32(&mut head, s.crc);
            put_u32(&mut head, 0);
        }
        head.resize(PAYLOAD_START as usize, 0);
        let crc = crc32(&head);
        head[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&head)?;
        self.file.sync_all()
    }
}

/// Writes everything an index needs into `path` (a temp file the caller
/// then renames into place): dictionary, catalog (sorted by id),
/// canonical postings, and the index's extra sections.
pub fn write_snapshot<P: Persist>(
    path: &Path,
    epoch: u64,
    dict: &Dictionary,
    catalog: &[Object],
    index: &P,
) -> io::Result<()> {
    let mut w = SnapshotWriter::create(path)?;

    // Canonical postings, sorted by (elem, id), live only.
    let mut tuples: Vec<(u32, u32, u64, u64)> = Vec::new();
    let by_id: std::collections::HashMap<u32, (u64, u64)> = catalog
        .iter()
        .map(|o| (o.id, (o.interval.st, o.interval.end)))
        .collect();
    let intervals = |id: u32| by_id.get(&id).copied();
    index.collect_postings(&intervals, &mut tuples);
    tuples.sort_unstable();

    // META.
    let (mut dmin, mut dmax) = (u64::MAX, 0u64);
    for &(_, _, st, end) in &tuples {
        dmin = dmin.min(st);
        dmax = dmax.max(end);
    }
    for o in catalog {
        dmin = dmin.min(o.interval.st);
        dmax = dmax.max(o.interval.end);
    }
    if dmin > dmax {
        (dmin, dmax) = (0, 0);
    }
    let (config_a, config_b) = index.meta_words();
    let mut meta = Vec::with_capacity(48);
    put_u64(&mut meta, dmin);
    put_u64(&mut meta, dmax);
    put_u32(&mut meta, config_a);
    put_u32(&mut meta, config_b);
    put_u64(&mut meta, tuples.len() as u64);
    put_u64(&mut meta, dict.len() as u64);
    put_u64(&mut meta, catalog.len() as u64);
    w.section(section::META, &meta)?;

    // Dictionary.
    let mut offs = Vec::new();
    let mut blob = Vec::new();
    let mut freq = Vec::new();
    put_u32(&mut offs, 0);
    for id in 0..dict.len() as u32 {
        let term = dict.term(id).unwrap_or("");
        blob.extend_from_slice(term.as_bytes());
        put_u32(&mut offs, blob.len() as u32);
        put_u32(&mut freq, dict.freq(id));
    }
    w.section(section::DICT_OFFS, &offs)?;
    w.section(section::DICT_BLOB, &blob)?;
    w.section(section::DICT_FREQ, &freq)?;

    // Catalog, sorted by id.
    let mut order: Vec<usize> = (0..catalog.len()).collect();
    order.sort_unstable_by_key(|&i| catalog[i].id);
    let (mut ids, mut sts, mut ends) = (Vec::new(), Vec::new(), Vec::new());
    let (mut desc_offs, mut desc) = (Vec::new(), Vec::new());
    put_u32(&mut desc_offs, 0);
    let mut n_desc = 0u32;
    for &i in &order {
        let o = &catalog[i];
        put_u32(&mut ids, o.id);
        put_u64(&mut sts, o.interval.st);
        put_u64(&mut ends, o.interval.end);
        for &e in &o.desc {
            put_u32(&mut desc, e);
        }
        n_desc += o.desc.len() as u32;
        put_u32(&mut desc_offs, n_desc);
    }
    w.section(section::CAT_IDS, &ids)?;
    w.section(section::CAT_STS, &sts)?;
    w.section(section::CAT_ENDS, &ends)?;
    w.section(section::CAT_DESC_OFFS, &desc_offs)?;
    w.section(section::CAT_DESC, &desc)?;

    // Postings columns.
    let (mut elems, mut poffs) = (Vec::new(), Vec::new());
    let (mut pids, mut psts, mut pends) = (Vec::new(), Vec::new(), Vec::new());
    put_u32(&mut poffs, 0);
    let mut last_elem = None;
    for (row, &(e, id, st, end)) in tuples.iter().enumerate() {
        if last_elem != Some(e) {
            if last_elem.is_some() {
                put_u32(&mut poffs, row as u32);
            }
            put_u32(&mut elems, e);
            last_elem = Some(e);
        }
        put_u32(&mut pids, id);
        put_u64(&mut psts, st);
        put_u64(&mut pends, end);
    }
    if last_elem.is_some() {
        put_u32(&mut poffs, tuples.len() as u32);
    }
    w.section(section::POST_ELEMS, &elems)?;
    w.section(section::POST_OFFS, &poffs)?;
    w.section(section::POST_IDS, &pids)?;
    w.section(section::POST_STS, &psts)?;
    w.section(section::POST_ENDS, &pends)?;

    index.persist_extras(&mut w)?;
    w.finish(index.kind(), epoch, catalog.len() as u64)
}

/// An opened, fully CRC-verified snapshot. Holds the bytes (mapped or
/// heap) plus the parsed section table and [`SnapshotMeta`].
pub struct SnapshotFile {
    bytes: Bytes,
    sections: Vec<SectionEntry>,
    meta: SnapshotMeta,
}

impl std::fmt::Debug for SnapshotFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotFile")
            .field("meta", &self.meta)
            .field("sections", &self.sections.len())
            .field("mapped", &self.bytes.is_mapped())
            .finish()
    }
}

impl SnapshotFile {
    /// Opens and verifies `path`: magic, version, length, header CRC,
    /// and every section CRC. Rejects corrupt, truncated, or
    /// version-skewed files with a path-addressed error.
    pub fn open(path: &Path, mode: LoadMode) -> Result<SnapshotFile, SnapshotError> {
        let bytes = Bytes::load(path, mode)?;
        if (bytes.len() as u64) < PAYLOAD_START {
            return Err(SnapshotError::corrupt(
                "snapshot/header",
                format!("file is {} bytes, smaller than the header", bytes.len()),
            ));
        }
        if bytes[0..8] != MAGIC {
            return Err(SnapshotError::corrupt(
                "snapshot/header",
                "bad magic: not a tir snapshot",
            ));
        }
        let version = crate::cols::read_u32(&bytes, 8).unwrap_or(0);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::corrupt(
                "snapshot/header",
                format!("format version {version} unsupported (this build reads {FORMAT_VERSION})"),
            ));
        }
        let kind_raw = crate::cols::read_u32(&bytes, 12).unwrap_or(0);
        let kind = IndexKind::from_u32(kind_raw).ok_or_else(|| {
            SnapshotError::corrupt("snapshot/header", format!("unknown index kind {kind_raw}"))
        })?;
        let epoch = crate::cols::read_u64(&bytes, 16).unwrap_or(0);
        let live = crate::cols::read_u64(&bytes, 24).unwrap_or(0);
        let n_sections = crate::cols::read_u32(&bytes, 32).unwrap_or(0) as usize;
        let file_len = crate::cols::read_u64(&bytes, 36).unwrap_or(0);
        if file_len != bytes.len() as u64 {
            return Err(SnapshotError::corrupt(
                "snapshot/header",
                format!(
                    "file is {} bytes but header says {file_len} (truncated?)",
                    bytes.len()
                ),
            ));
        }
        if n_sections > MAX_SECTIONS {
            return Err(SnapshotError::corrupt(
                "snapshot/header",
                format!("section count {n_sections} exceeds the table capacity {MAX_SECTIONS}"),
            ));
        }
        let stored_crc = crate::cols::read_u32(&bytes, 44).unwrap_or(0);
        let mut hc = Crc32::new();
        hc.update(&bytes[0..44]);
        hc.update(&[0, 0, 0, 0]);
        hc.update(&bytes[48..PAYLOAD_START as usize]);
        if hc.finish() != stored_crc {
            return Err(SnapshotError::corrupt(
                "snapshot/header",
                "header/table CRC mismatch",
            ));
        }

        let mut sections = Vec::with_capacity(n_sections);
        for i in 0..n_sections {
            let base = (HEADER_LEN + i as u64 * ENTRY_LEN) as usize;
            let id = crate::cols::read_u32(&bytes, base).unwrap_or(0);
            let offset = crate::cols::read_u64(&bytes, base + 8).unwrap_or(0);
            let len = crate::cols::read_u64(&bytes, base + 16).unwrap_or(0);
            let crc = crate::cols::read_u32(&bytes, base + 24).unwrap_or(0);
            let at = format!("snapshot/section[{id}]");
            if !offset.is_multiple_of(SECTION_ALIGN) {
                return Err(SnapshotError::corrupt(
                    at,
                    format!("offset {offset} unaligned"),
                ));
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| SnapshotError::corrupt(at.clone(), "offset + length overflows"))?;
            if end > bytes.len() as u64 {
                return Err(SnapshotError::corrupt(
                    at,
                    format!("extends to byte {end} past the file end {}", bytes.len()),
                ));
            }
            let payload = &bytes[offset as usize..end as usize];
            if crc32(payload) != crc {
                return Err(SnapshotError::corrupt(at, "section CRC mismatch"));
            }
            sections.push(SectionEntry {
                id,
                offset,
                len,
                crc,
            });
        }

        // META is mandatory.
        let meta_bytes = sections
            .iter()
            .find(|s| s.id == section::META)
            .map(|s| &bytes[s.offset as usize..(s.offset + s.len) as usize])
            .ok_or_else(|| SnapshotError::corrupt("snapshot/meta", "META section missing"))?;
        if meta_bytes.len() < 48 {
            return Err(SnapshotError::corrupt(
                "snapshot/meta",
                format!("META is {} bytes, expected 48", meta_bytes.len()),
            ));
        }
        let meta = SnapshotMeta {
            kind,
            epoch,
            live,
            domain_min: crate::cols::read_u64(meta_bytes, 0).unwrap_or(0),
            domain_max: crate::cols::read_u64(meta_bytes, 8).unwrap_or(0),
            config_a: crate::cols::read_u32(meta_bytes, 16).unwrap_or(0),
            config_b: crate::cols::read_u32(meta_bytes, 20).unwrap_or(0),
            postings: crate::cols::read_u64(meta_bytes, 24).unwrap_or(0),
            dict_len: crate::cols::read_u64(meta_bytes, 32).unwrap_or(0),
            catalog_len: crate::cols::read_u64(meta_bytes, 40).unwrap_or(0),
        };
        Ok(SnapshotFile {
            bytes,
            sections,
            meta,
        })
    }

    /// Parsed header + META.
    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta
    }

    /// True if the backing bytes are a zero-copy mapping.
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// Raw bytes of a section, if present.
    pub fn section_bytes(&self, id: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.id == id)
            .map(|s| &self.bytes[s.offset as usize..(s.offset + s.len) as usize])
    }

    /// A section as a `u32` column.
    pub fn u32_col(&self, id: u32) -> Result<U32Col<'_>, SnapshotError> {
        let bytes = self.section_bytes(id).ok_or_else(|| {
            // analyze:allow(hot-path-alloc): load-time error path; never taken by a query (suffix collision with the planner)
            SnapshotError::corrupt(format!("snapshot/section[{id}]"), "section missing")
        })?;
        U32Col::new(bytes).ok_or_else(|| {
            SnapshotError::corrupt(
                // analyze:allow(hot-path-alloc): load-time error path; never taken by a query (suffix collision with the planner)
                format!("snapshot/section[{id}]"),
                "length is not a multiple of 4",
            )
        })
    }

    /// A section as a `u64` column.
    pub fn u64_col(&self, id: u32) -> Result<U64Col<'_>, SnapshotError> {
        let bytes = self.section_bytes(id).ok_or_else(|| {
            // analyze:allow(hot-path-alloc): load-time error path; never taken by a query (suffix collision with the planner)
            SnapshotError::corrupt(format!("snapshot/section[{id}]"), "section missing")
        })?;
        U64Col::new(bytes).ok_or_else(|| {
            SnapshotError::corrupt(
                // analyze:allow(hot-path-alloc): load-time error path; never taken by a query (suffix collision with the planner)
                format!("snapshot/section[{id}]"),
                "length is not a multiple of 8",
            )
        })
    }

    /// Rebuilds the dictionary (heap path).
    pub fn dictionary(&self) -> Result<Dictionary, SnapshotError> {
        let offs = self.u32_col(section::DICT_OFFS)?;
        let blob = self
            .section_bytes(section::DICT_BLOB)
            .ok_or_else(|| SnapshotError::corrupt("snapshot/dict/blob", "section missing"))?;
        let freq = self.u32_col(section::DICT_FREQ)?;
        if offs.len() != self.meta.dict_len as usize + 1
            || freq.len() != self.meta.dict_len as usize
        {
            return Err(SnapshotError::corrupt(
                "snapshot/dict",
                format!(
                    "META says {} terms but offsets hold {} and freqs {}",
                    self.meta.dict_len,
                    offs.len().saturating_sub(1),
                    freq.len()
                ),
            ));
        }
        let mut terms = Vec::with_capacity(freq.len());
        let mut prev = 0u32;
        for i in 0..freq.len() {
            let end = offs.get(i + 1);
            if end < prev || end as usize > blob.len() {
                return Err(SnapshotError::corrupt(
                    format!("snapshot/dict/offs[{}]", i + 1),
                    format!(
                        "offset {end} not monotone within the {}–byte blob",
                        blob.len()
                    ),
                ));
            }
            let term = std::str::from_utf8(&blob[prev as usize..end as usize]).map_err(|_| {
                SnapshotError::corrupt(format!("snapshot/dict/term[{i}]"), "invalid UTF-8")
            })?;
            terms.push(term.to_string());
            prev = end;
        }
        Dictionary::from_parts(terms, freq.to_vec())
            .map_err(|msg| SnapshotError::corrupt("snapshot/dict", msg))
    }

    /// Rebuilds the catalog objects, sorted by id (heap path).
    pub fn catalog_objects(&self) -> Result<Vec<Object>, SnapshotError> {
        let ids = self.u32_col(section::CAT_IDS)?;
        let sts = self.u64_col(section::CAT_STS)?;
        let ends = self.u64_col(section::CAT_ENDS)?;
        let desc_offs = self.u32_col(section::CAT_DESC_OFFS)?;
        let desc = self.u32_col(section::CAT_DESC)?;
        let n = self.meta.catalog_len as usize;
        if ids.len() != n || sts.len() != n || ends.len() != n || desc_offs.len() != n + 1 {
            return Err(SnapshotError::corrupt(
                "snapshot/catalog",
                format!(
                    "META says {n} objects but columns hold {}/{}/{}/{}",
                    ids.len(),
                    sts.len(),
                    ends.len(),
                    desc_offs.len().saturating_sub(1)
                ),
            ));
        }
        let mut out = Vec::with_capacity(n);
        let mut prev_off = 0u32;
        for i in 0..n {
            let end = desc_offs.get(i + 1);
            if end < prev_off || end as usize > desc.len() {
                return Err(SnapshotError::corrupt(
                    format!("snapshot/catalog/desc_offs[{}]", i + 1),
                    format!(
                        "offset {end} not monotone within {} desc entries",
                        desc.len()
                    ),
                ));
            }
            let d: Vec<u32> = (prev_off as usize..end as usize)
                .map(|j| desc.get(j))
                .collect();
            out.push(Object::new(ids.get(i), sts.get(i), ends.get(i), d));
            prev_off = end;
        }
        Ok(out)
    }

    /// The canonical postings as owned tuples, sorted by (elem, id) —
    /// the full-load path for [`Persist::restore`].
    pub fn postings_tuples(&self) -> Result<Vec<(u32, u32, u64, u64)>, SnapshotError> {
        let view = self.postings()?;
        let mut out = Vec::with_capacity(self.meta.postings as usize);
        for ei in 0..view.elems.len() {
            let e = view.elems.get(ei);
            let (lo, hi) = view.bounds(ei)?;
            for row in lo..hi {
                out.push((e, view.ids.get(row), view.sts.get(row), view.ends.get(row)));
            }
        }
        Ok(out)
    }

    /// The zero-copy postings view — queries run straight off the
    /// mapped columns.
    pub fn postings(&self) -> Result<MappedPostings<'_>, SnapshotError> {
        let elems = self.u32_col(section::POST_ELEMS)?;
        let offs = self.u32_col(section::POST_OFFS)?;
        let ids = self.u32_col(section::POST_IDS)?;
        let sts = self.u64_col(section::POST_STS)?;
        let ends = self.u64_col(section::POST_ENDS)?;
        let rows = ids.len();
        if sts.len() != rows || ends.len() != rows {
            return Err(SnapshotError::corrupt(
                "snapshot/postings",
                // analyze:allow(hot-path-alloc): load-time error path; never taken by a query (suffix collision with the planner)
                format!(
                    "parallel columns disagree: {rows} ids, {} sts, {} ends",
                    sts.len(),
                    ends.len()
                ),
            ));
        }
        if !elems.is_empty() && offs.len() != elems.len() + 1 {
            return Err(SnapshotError::corrupt(
                "snapshot/postings",
                // analyze:allow(hot-path-alloc): load-time error path; never taken by a query (suffix collision with the planner)
                format!(
                    "{} elements need {} offsets, found {}",
                    elems.len(),
                    elems.len() + 1,
                    offs.len()
                ),
            ));
        }
        if rows as u64 != self.meta.postings {
            return Err(SnapshotError::corrupt(
                "snapshot/postings",
                // analyze:allow(hot-path-alloc): load-time error path; never taken by a query (suffix collision with the planner)
                format!(
                    "META says {} postings but columns hold {rows}",
                    self.meta.postings
                ),
            ));
        }
        Ok(MappedPostings {
            elems,
            offs,
            ids,
            sts,
            ends,
        })
    }
}

/// Zero-copy query view over the canonical postings sections: the
/// element directory plus parallel id/start/end columns, read in place
/// (mmap or heap) with no per-posting deserialization.
#[derive(Debug, Clone, Copy)]
pub struct MappedPostings<'a> {
    /// Distinct elements, ascending.
    pub elems: U32Col<'a>,
    /// Per-element offsets (`elems.len() + 1` entries).
    pub offs: U32Col<'a>,
    /// Object ids, ascending within each element.
    pub ids: U32Col<'a>,
    /// Lifespan starts, parallel to `ids`.
    pub sts: U64Col<'a>,
    /// Lifespan ends, parallel to `ids`.
    pub ends: U64Col<'a>,
}

impl MappedPostings<'_> {
    /// Row bounds of element index `ei`, validated against the columns.
    fn bounds(&self, ei: usize) -> Result<(usize, usize), SnapshotError> {
        let lo = self.offs.get(ei) as usize;
        let hi = self.offs.get(ei + 1) as usize;
        if lo > hi || hi > self.ids.len() {
            return Err(SnapshotError::corrupt(
                format!("snapshot/postings/offs[{ei}]"),
                format!("row range {lo}..{hi} invalid over {} rows", self.ids.len()),
            ));
        }
        Ok((lo, hi))
    }

    /// Number of postings of element `e` (0 if absent).
    pub fn postings_len(&self, e: u32) -> usize {
        match self.elems.binary_search(e) {
            Ok(ei) => {
                let lo = self.offs.get(ei) as usize;
                let hi = self.offs.get(ei + 1) as usize;
                hi.saturating_sub(lo)
            }
            Err(_) => 0,
        }
    }

    /// Answers a time-travel query straight off the columns: seed scan
    /// over the least-frequent element's rows with the temporal filter,
    /// then id-merge intersections against each remaining element's
    /// ascending id column. Allocation-free outside the caller-owned
    /// scratch and output buffers.
    pub fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<u32>) {
        scratch.reset();
        // Plan: element *positions* in the directory, shortest first.
        for &e in &q.elems {
            match self.elems.binary_search(e) {
                Ok(ei) => scratch.plan.push(ei as u32),
                Err(_) => return, // an element with no postings ⇒ empty
            }
        }
        if scratch.plan.is_empty() {
            return;
        }
        let len_of =
            |ei: u32| self.offs.get(ei as usize + 1) as usize - self.offs.get(ei as usize) as usize;
        scratch.plan.sort_unstable_by_key(|&ei| len_of(ei));

        // Seed: temporal filter over the shortest list.
        let seed = scratch.plan[0] as usize;
        let (lo, hi) = (
            self.offs.get(seed) as usize,
            self.offs.get(seed + 1) as usize,
        );
        for row in lo..hi {
            if self.sts.get(row) <= q.interval.end && self.ends.get(row) >= q.interval.st {
                scratch.cands.push(self.ids.get(row));
            }
        }
        scratch.note(Kernel::Merge, (hi - lo) as u64);

        // Intersections: merge walk over ascending id columns.
        for pi in 1..scratch.plan.len() {
            if scratch.cands.is_empty() {
                break;
            }
            let ei = scratch.plan[pi] as usize;
            let (lo, hi) = (self.offs.get(ei) as usize, self.offs.get(ei + 1) as usize);
            let mut keep = 0usize;
            let mut row = lo;
            let mut scanned = 0u64;
            for ci in 0..scratch.cands.len() {
                let cand = scratch.cands[ci];
                while row < hi && self.ids.get(row) < cand {
                    row += 1;
                    scanned += 1;
                }
                if row < hi && self.ids.get(row) == cand {
                    scratch.cands[keep] = cand;
                    keep += 1;
                }
            }
            scratch.cands.truncate(keep);
            scratch.note(Kernel::Merge, scanned);
        }
        scratch.take_into(out);
    }
}

/// Snapshot support: how an index writes its sections and rebuilds
/// itself from them. Implemented for [`Tif`], [`TifHint`],
/// [`CompactTemporalInverted`], and the [`BruteForce`] oracle.
pub trait Persist: Sized {
    /// The format tag written into the header.
    fn kind(&self) -> IndexKind;

    /// Index-specific META words (tIF+HINT stores strategy and `m`).
    fn meta_words(&self) -> (u32, u32) {
        (0, 0)
    }

    /// Appends every **live** posting as `(elem, id, st, end)`.
    /// `intervals` resolves an object id to its lifespan for indexes
    /// that do not store endpoints themselves (e.g. tIF+HINT under the
    /// storage optimization); indexes that do can ignore it.
    fn collect_postings(
        &self,
        intervals: &dyn Fn(u32) -> Option<(u64, u64)>,
        out: &mut Vec<(u32, u32, u64, u64)>,
    );

    /// Writes any sections beyond the canonical ones (default: none).
    fn persist_extras(&self, _w: &mut SnapshotWriter) -> io::Result<()> {
        Ok(())
    }

    /// Rebuilds the native in-memory index from a verified snapshot —
    /// the full-load path.
    fn restore(snap: &SnapshotFile) -> Result<Self, SnapshotError>;
}

fn expect_kind(snap: &SnapshotFile, want: &[IndexKind]) -> Result<(), SnapshotError> {
    if want.contains(&snap.meta().kind) {
        Ok(())
    } else {
        Err(SnapshotError::corrupt(
            "snapshot/header",
            format!(
                "snapshot stores {:?}, not one of the requested kinds {want:?}",
                snap.meta().kind
            ),
        ))
    }
}

impl Persist for Tif {
    fn kind(&self) -> IndexKind {
        IndexKind::Tif
    }

    fn collect_postings(
        &self,
        _intervals: &dyn Fn(u32) -> Option<(u64, u64)>,
        out: &mut Vec<(u32, u32, u64, u64)>,
    ) {
        self.for_each_list(|e, list| {
            for i in 0..list.ids.len() {
                if live(list.ids[i]) {
                    out.push((e, list.ids[i], list.sts[i], list.ends[i]));
                }
            }
        });
    }

    fn restore(snap: &SnapshotFile) -> Result<Tif, SnapshotError> {
        expect_kind(snap, &[IndexKind::Tif])?;
        Ok(Tif::from_postings(&snap.postings_tuples()?))
    }
}

impl Persist for TifHint {
    fn kind(&self) -> IndexKind {
        match self.strategy() {
            tir_core::IntersectStrategy::BinarySearch => IndexKind::TifHintBs,
            tir_core::IntersectStrategy::MergeSort => IndexKind::TifHintMs,
        }
    }

    fn meta_words(&self) -> (u32, u32) {
        let cfg = self.config();
        let strategy = match cfg.strategy {
            tir_core::IntersectStrategy::BinarySearch => 1,
            tir_core::IntersectStrategy::MergeSort => 2,
        };
        (strategy, cfg.m)
    }

    fn collect_postings(
        &self,
        intervals: &dyn Fn(u32) -> Option<(u64, u64)>,
        out: &mut Vec<(u32, u32, u64, u64)>,
    ) {
        // Per-element live ids come from a full-domain range query (each
        // id exactly once); endpoints come from the catalog because the
        // storage optimization elides them inside divisions.
        let mut ids = Vec::new();
        self.for_each_hint(|e, h| {
            let d = h.domain();
            ids.clear();
            h.range_query_into(d.min(), d.max(), &mut ids);
            for &id in &ids {
                if let Some((st, end)) = intervals(raw(id)) {
                    out.push((e, raw(id), st, end));
                }
            }
        });
    }

    fn persist_extras(&self, w: &mut SnapshotWriter) -> io::Result<()> {
        // The HINT partition directory: for every element, its division
        // inventory (packed level·4+kind, partition key, stored length).
        // fsck uses it to cross-check the rebuilt hierarchy.
        let mut per_elem: Vec<(u32, Vec<(u32, u32, u32)>)> = Vec::new();
        self.for_each_hint(|e, h| {
            let mut divs = Vec::new();
            h.for_each_division(|view, _dead| {
                let kind = match view.kind {
                    tir_hint::DivisionKind::OrigIn => 0u32,
                    tir_hint::DivisionKind::OrigAft => 1,
                    tir_hint::DivisionKind::ReplIn => 2,
                    tir_hint::DivisionKind::ReplAft => 3,
                };
                divs.push((view.level * 4 + kind, view.j, view.ids.len() as u32));
            });
            per_elem.push((e, divs));
        });
        per_elem.sort_unstable_by_key(|(e, _)| *e);

        let (mut elems, mut offs) = (Vec::new(), Vec::new());
        let (mut levels, mut keys, mut lens) = (Vec::new(), Vec::new(), Vec::new());
        put_u32(&mut offs, 0);
        let mut total = 0u32;
        for (e, divs) in &per_elem {
            put_u32(&mut elems, *e);
            for &(lvl, j, len) in divs {
                put_u32(&mut levels, lvl);
                put_u32(&mut keys, j);
                put_u32(&mut lens, len);
            }
            total += divs.len() as u32;
            put_u32(&mut offs, total);
        }
        w.section(section::HINT_ELEMS, &elems)?;
        w.section(section::HINT_DIV_OFFS, &offs)?;
        w.section(section::HINT_DIV_LEVELS, &levels)?;
        w.section(section::HINT_DIV_KEYS, &keys)?;
        w.section(section::HINT_DIV_LENS, &lens)
    }

    fn restore(snap: &SnapshotFile) -> Result<TifHint, SnapshotError> {
        expect_kind(snap, &[IndexKind::TifHintBs, IndexKind::TifHintMs])?;
        let meta = snap.meta();
        let strategy = match meta.config_a {
            1 => tir_core::IntersectStrategy::BinarySearch,
            2 => tir_core::IntersectStrategy::MergeSort,
            other => {
                return Err(SnapshotError::corrupt(
                    "snapshot/meta",
                    format!("unknown tIF+HINT strategy word {other}"),
                ))
            }
        };
        let config = TifHintConfig {
            strategy,
            m: meta.config_b,
        };
        Ok(TifHint::from_postings(
            &snap.postings_tuples()?,
            (meta.domain_min, meta.domain_max),
            config,
        ))
    }
}

impl Persist for CompactTemporalInverted {
    fn kind(&self) -> IndexKind {
        IndexKind::CompactTemporal
    }

    fn collect_postings(
        &self,
        _intervals: &dyn Fn(u32) -> Option<(u64, u64)>,
        out: &mut Vec<(u32, u32, u64, u64)>,
    ) {
        for (ei, &e) in self.elements().iter().enumerate() {
            let lo = self.offsets()[ei] as usize;
            let hi = self.offsets()[ei + 1] as usize;
            for row in lo..hi {
                let id = self.all_ids()[row];
                if live(id) {
                    out.push((e, id, self.all_sts()[row], self.all_ends()[row]));
                }
            }
        }
    }

    fn restore(snap: &SnapshotFile) -> Result<CompactTemporalInverted, SnapshotError> {
        expect_kind(snap, &[IndexKind::CompactTemporal])?;
        let mut tuples = snap.postings_tuples()?;
        Ok(CompactTemporalInverted::build(&mut tuples))
    }
}

impl Persist for BruteForce {
    fn kind(&self) -> IndexKind {
        IndexKind::BruteForce
    }

    fn collect_postings(
        &self,
        _intervals: &dyn Fn(u32) -> Option<(u64, u64)>,
        out: &mut Vec<(u32, u32, u64, u64)>,
    ) {
        self.for_each_live(|o| {
            for &e in &o.desc {
                out.push((e, o.id, o.interval.st, o.interval.end));
            }
        });
    }

    fn restore(snap: &SnapshotFile) -> Result<BruteForce, SnapshotError> {
        expect_kind(snap, &[IndexKind::BruteForce])?;
        Ok(BruteForce::build(&snap.catalog_objects()?))
    }
}
