//! The audited memory-mapping wrapper — **the only module in the
//! workspace allowed to contain `unsafe`** (the `unsafe-code` rule of
//! `tir-analyze` rejects the keyword anywhere else).
//!
//! On Unix the [`Mmap`] type maps a file read-only with
//! `mmap(PROT_READ, MAP_PRIVATE)` declared directly against libc (which
//! `std` already links — no new dependency) and unmaps on drop. On other
//! platforms, and whenever a caller asks for [`LoadMode::Heap`], the
//! [`Bytes`] loader falls back to an ordinary buffered read.
//!
//! ## Safety argument
//!
//! * The mapping is `PROT_READ`/`MAP_PRIVATE`: nothing can write through
//!   it, and writes by other processes to the underlying file are not
//!   required to become visible.
//! * Snapshot files are **immutable once renamed into place** (the
//!   writer's temp-file → fsync → rename discipline in
//!   [`crate::snapshot`]); the repo never truncates or rewrites a live
//!   snapshot, which is the one way a mapped read could fault (SIGBUS).
//! * The pointer/length pair returned by a successful `mmap` is valid
//!   for exactly `len` bytes until `munmap`, which only [`Drop`] calls.
//! * `Mmap` is `Send + Sync` because the mapping is immutable shared
//!   memory: concurrent `&[u8]` reads are race-free by construction.

#![allow(unsafe_code)]

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

/// How a snapshot file should be brought into memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Zero-copy `mmap`; falls back to a heap read on platforms without
    /// the wrapper.
    Mmap,
    /// Ordinary buffered read into a `Vec<u8>`.
    Heap,
}

/// A read-only memory-mapped file region.
#[cfg(unix)]
pub struct Mmap {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

#[cfg(unix)]
mod sys {
    //! Minimal libc surface, declared here so the crate needs no
    //! external dependency. `std` links libc on every Unix target.
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
}

#[cfg(unix)]
impl Mmap {
    /// Maps `file` read-only. An empty file maps to an empty slice
    /// without calling `mmap` (which rejects zero lengths).
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: fd is a live descriptor borrowed from `file` for the
        // duration of the call; addr=NULL lets the kernel choose the
        // placement; PROT_READ + MAP_PRIVATE can alias no writable
        // memory. The result is checked against MAP_FAILED below.
        // analyze:allow(unsafe-code): audited FFI call, arguments validated above, result checked below
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` came from a successful mmap of exactly `len`
        // bytes, is non-null (the len==0 case returned above), stays
        // mapped until Drop, and the mapping is immutable (PROT_READ).
        // analyze:allow(unsafe-code): audited pointer/length pair from a checked mmap, immutable until Drop
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }
}

// SAFETY: the region is immutable shared memory for the lifetime of the
// value; `&Mmap` only ever hands out `&[u8]`, so cross-thread use is
// data-race-free, and ownership transfer moves only the pointer.
// analyze:allow(unsafe-code): immutable read-only mapping; no interior mutability
#[cfg(unix)]
unsafe impl Send for Mmap {}
// SAFETY: as above — shared `&self` access is read-only.
// analyze:allow(unsafe-code): immutable read-only mapping; no interior mutability
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: `ptr`/`len` are the exact pair a successful mmap
            // returned; unmapping happens exactly once (Drop).
            // analyze:allow(unsafe-code): audited munmap of the pair mmap returned; called once
            let _ = unsafe { sys::munmap(self.ptr, self.len) };
        }
    }
}

#[cfg(unix)]
impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// File contents, either zero-copy mapped or heap-loaded. Derefs to
/// `[u8]` so every consumer is agnostic to the mode.
#[derive(Debug)]
pub enum Bytes {
    /// Zero-copy mapping (Unix only).
    #[cfg(unix)]
    Mapped(Mmap),
    /// Heap fallback.
    Heap(Vec<u8>),
}

impl Bytes {
    /// Loads `path` with the requested mode. [`LoadMode::Mmap`] silently
    /// degrades to a heap read on non-Unix targets.
    pub fn load(path: &Path, mode: LoadMode) -> io::Result<Bytes> {
        let mut file = File::open(path)?;
        #[cfg(unix)]
        if mode == LoadMode::Mmap {
            return Ok(Bytes::Mapped(Mmap::map(&file)?));
        }
        let _ = mode;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(Bytes::Heap(buf))
    }

    /// True if this is a zero-copy mapping.
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Bytes::Mapped(_) => true,
            Bytes::Heap(_) => false,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Bytes::Mapped(m) => m.as_bytes(),
            Bytes::Heap(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("tir-persist-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).expect("create scratch file");
        f.write_all(contents).expect("write scratch file");
        f.sync_all().expect("sync scratch file");
        path
    }

    #[test]
    fn mapped_and_heap_agree() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = scratch_file("agree", &payload);
        let mapped = Bytes::load(&path, LoadMode::Mmap).expect("map");
        let heap = Bytes::load(&path, LoadMode::Heap).expect("read");
        assert_eq!(&*mapped, &payload[..]);
        assert_eq!(&*heap, &payload[..]);
        assert!(!heap.is_mapped());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = scratch_file("empty", b"");
        let mapped = Bytes::load(&path, LoadMode::Mmap).expect("map");
        assert!(mapped.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_error() {
        let path = std::env::temp_dir().join("tir-persist-mmap-definitely-missing");
        assert!(Bytes::load(&path, LoadMode::Mmap).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn mapping_survives_cross_thread_reads() {
        let payload = vec![7u8; 4096];
        let path = scratch_file("threads", &payload);
        let mapped = std::sync::Arc::new(Bytes::load(&path, LoadMode::Mmap).expect("map"));
        assert!(mapped.is_mapped());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&mapped);
                std::thread::spawn(move || m.iter().map(|&b| u64::from(b)).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("join"), 7 * 4096);
        }
        let _ = std::fs::remove_file(&path);
    }
}
