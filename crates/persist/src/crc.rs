//! CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! checksum guarding every snapshot section and WAL record. Table-driven
//! and dependency-free; the table is built at compile time.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Streaming CRC32 state.
///
/// ```
/// use tir_persist::Crc32;
///
/// let mut c = Crc32::new();
/// c.update(b"123456789");
/// assert_eq!(c.finish(), 0xCBF4_3926); // the IEEE check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"hello temporal world";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"snapshot");
        let mut flipped = *b"snapshot";
        flipped[3] ^= 1;
        assert_ne!(a, crc32(&flipped));
    }
}
