//! The durability engine: the one place that owns the WAL-before-apply
//! ordering, snapshot atomicity, and recovery.
//!
//! Both the server's durable applier and the crash-recovery property
//! tests drive this type, so the ordering logic under test is exactly
//! the ordering in production:
//!
//! 1. [`Durability::apply_batch`] — append the batch to the WAL,
//!    `fsync`, **then** apply it to the index and the catalog mirror and
//!    advance the epoch. A crash before the fsync loses the batch (it
//!    was never acknowledged); after, recovery replays it.
//! 2. [`Durability::write_snapshot`] — write the full state to
//!    `snapshot.tir.tmp`, `fsync`, rename over `snapshot.tir`, `fsync`
//!    the directory, then prune covered WAL segments. A crash at any
//!    point leaves either the old or the new snapshot intact.
//! 3. [`Durability::recover`] — load the snapshot, replay `terms.log`,
//!    replay WAL records above the snapshot epoch (truncating a torn
//!    tail), and reopen the WAL for appending. The recovered epoch is
//!    **at least** the last acknowledged one: a batch that reached the
//!    fsync but died before the acknowledgment is replayed too (standard
//!    WAL semantics — recovery never loses an ack, it may complete an
//!    almost-acknowledged write).
//!
//! Kill points ([`crate::kill`]) sit between every pair of steps; the
//! property tests arm each in turn and assert oracle-exact recovery.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tir_core::{Object, TemporalIrIndex};
use tir_invidx::Dictionary;

use crate::kill::{self, KillPoint};
use crate::mmap::LoadMode;
use crate::snapshot::{write_snapshot, Persist, SnapshotFile};
use crate::termlog::TermLog;
use crate::wal::{Wal, WalOp, DEFAULT_SEGMENT_BYTES};

/// File name of the current snapshot inside the data directory.
pub const SNAPSHOT_NAME: &str = "snapshot.tir";
const SNAPSHOT_TMP: &str = "snapshot.tir.tmp";

/// Tuning knobs for a data directory.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Snapshot after this many epochs since the last one (checked at
    /// flush barriers; 0 disables automatic snapshots).
    pub snapshot_every: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            snapshot_every: 512,
        }
    }
}

/// Shared durability counters (read by the STATS handler while the
/// applier owns the [`Durability`]). SeqCst throughout: these are
/// cold-path counters bumped once per batch or snapshot.
#[derive(Debug, Default)]
pub struct PersistStats {
    /// Epoch of the last durable snapshot.
    pub snapshot_epoch: AtomicU64,
    /// Epoch recovery reached (0 for a fresh directory).
    pub recovered_epoch: AtomicU64,
    /// WAL records appended since open.
    pub wal_records: AtomicU64,
    /// WAL bytes appended since open.
    pub wal_bytes: AtomicU64,
    /// WAL fsyncs issued since open.
    pub wal_fsyncs: AtomicU64,
    /// WAL segments currently on disk.
    pub wal_segments: AtomicU64,
    /// Snapshots written since open.
    pub snapshots: AtomicU64,
}

/// What applying a batch produced.
#[derive(Debug, Clone, Copy)]
pub struct ApplyOutcome {
    /// The epoch the batch produced.
    pub epoch: u64,
    /// How many delete ops actually removed a live object.
    pub deleted: u64,
}

/// The result of [`Durability::recover`].
#[derive(Debug)]
pub struct Recovered<I> {
    /// The engine, ready for [`Durability::apply_batch`].
    pub durability: Durability,
    /// The rebuilt index at the recovered epoch.
    pub index: I,
    /// The rebuilt dictionary (snapshot terms + `terms.log` replay).
    pub dict: Dictionary,
    /// The epoch recovery reached.
    pub epoch: u64,
    /// WAL batches replayed on top of the snapshot.
    pub replayed: u64,
    /// True if a torn WAL tail was truncated (crash mid-append).
    pub truncated_tail: bool,
}

/// Owns a data directory: the open WAL, the catalog mirror the snapshot
/// writer needs, and the epoch counters.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    wal: Wal,
    catalog: HashMap<u32, Object>,
    epoch: u64,
    last_snapshot_epoch: u64,
    opts: DurabilityOptions,
    stats: Arc<PersistStats>,
}

impl Durability {
    /// True if `dir` already holds a snapshot (recover instead of
    /// create).
    pub fn exists(dir: &Path) -> bool {
        dir.join(SNAPSHOT_NAME).is_file()
    }

    /// Initializes a fresh data directory around an index that already
    /// holds `catalog` (possibly empty): writes snapshot at epoch 0 and
    /// opens an empty WAL.
    pub fn create<I: Persist>(
        dir: &Path,
        index: &I,
        dict: &Dictionary,
        catalog: &[Object],
        opts: DurabilityOptions,
    ) -> io::Result<Durability> {
        fs::create_dir_all(dir)?;
        let stats = Arc::new(PersistStats::default());
        let mut d = Durability {
            dir: dir.to_path_buf(),
            wal: Wal::open(dir, 1, opts.segment_bytes)?,
            catalog: catalog.iter().map(|o| (o.id, o.clone())).collect(),
            epoch: 0,
            last_snapshot_epoch: 0,
            opts,
            stats,
        };
        d.write_snapshot(index, dict)?;
        Ok(d)
    }

    /// Recovers `dir` to last-snapshot + WAL replay. See the module docs
    /// for the exact semantics.
    pub fn recover<I: Persist + TemporalIrIndex>(
        dir: &Path,
        opts: DurabilityOptions,
    ) -> io::Result<Recovered<I>> {
        // The snapshot restores onto the heap here: recovery rebuilds
        // the native mutable index (zero-copy serving is the separate
        // `MappedPostings` read path).
        let snap = SnapshotFile::open(&dir.join(SNAPSHOT_NAME), LoadMode::Heap)?;
        let snapshot_epoch = snap.meta().epoch;
        let mut index = I::restore(&snap)?;
        let mut dict = snap.dictionary()?;
        let mut catalog: HashMap<u32, Object> = snap
            .catalog_objects()?
            .into_iter()
            .map(|o| (o.id, o))
            .collect();
        drop(snap);

        // Terms first: WAL ops reference term ids, which the sidecar log
        // made durable before any referencing op could be enqueued.
        TermLog::recover(dir, &mut dict)?;

        let replay = Wal::replay(dir, snapshot_epoch)?;
        let mut epoch = snapshot_epoch;
        let replayed = replay.batches.len() as u64;
        for (e, ops) in &replay.batches {
            apply_ops(&mut index, &mut catalog, ops);
            epoch = *e;
        }

        let wal = Wal::open(dir, epoch + 1, opts.segment_bytes)?;
        let stats = Arc::new(PersistStats::default());
        stats.snapshot_epoch.store(snapshot_epoch, Ordering::SeqCst);
        stats.recovered_epoch.store(epoch, Ordering::SeqCst);
        stats
            .wal_segments
            .store(wal.stats().segments, Ordering::SeqCst);
        Ok(Recovered {
            durability: Durability {
                dir: dir.to_path_buf(),
                wal,
                catalog,
                epoch,
                last_snapshot_epoch: snapshot_epoch,
                opts,
                stats,
            },
            index,
            dict,
            epoch,
            replayed,
            truncated_tail: replay.truncated_tail,
        })
    }

    /// The current epoch (equals the number of applied batches since the
    /// directory was created).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epoch of the last durable snapshot.
    pub fn snapshot_epoch(&self) -> u64 {
        self.last_snapshot_epoch
    }

    /// The shared counters (hand a clone to the STATS handler).
    pub fn stats(&self) -> Arc<PersistStats> {
        Arc::clone(&self.stats)
    }

    /// The catalog mirror, sorted by id (what the snapshot writer and
    /// recovery verifiers see).
    pub fn catalog_sorted(&self) -> Vec<Object> {
        let mut v: Vec<Object> = self.catalog.values().cloned().collect();
        v.sort_unstable_by_key(|o| o.id);
        v
    }

    /// Number of live objects in the catalog mirror.
    pub fn live(&self) -> usize {
        self.catalog.len()
    }

    /// The canonical durable-apply ordering: WAL append → fsync → apply
    /// → epoch advance. Returns the epoch the batch produced. On error
    /// (real I/O failure or an armed kill point) nothing was applied and
    /// the epoch did not advance — the caller must treat the store as
    /// dead and not acknowledge the batch.
    pub fn apply_batch<I: TemporalIrIndex>(
        &mut self,
        index: &mut I,
        ops: &[WalOp],
    ) -> io::Result<ApplyOutcome> {
        let next = self.epoch + 1;
        kill::fire(KillPoint::BeforeWalAppend)?;
        self.wal.append(next, ops)?;
        kill::fire(KillPoint::BeforeWalSync)?;
        self.wal.sync()?;
        kill::fire(KillPoint::BeforeApply)?;
        let deleted = apply_ops(index, &mut self.catalog, ops);
        self.epoch = next;
        let w = self.wal.stats();
        self.stats.wal_records.store(w.records, Ordering::SeqCst);
        self.stats.wal_bytes.store(w.bytes, Ordering::SeqCst);
        self.stats.wal_fsyncs.store(w.fsyncs, Ordering::SeqCst);
        self.stats.wal_segments.store(w.segments, Ordering::SeqCst);
        Ok(ApplyOutcome {
            epoch: next,
            deleted,
        })
    }

    /// Writes a durable snapshot of the current state and prunes covered
    /// WAL segments: tmp write + fsync → rename → directory fsync →
    /// prune.
    pub fn write_snapshot<I: Persist>(&mut self, index: &I, dict: &Dictionary) -> io::Result<()> {
        kill::fire(KillPoint::BeforeSnapshotWrite)?;
        tir_fault::fire(tir_fault::FaultSite::SnapshotWrite)?;
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let catalog = self.catalog_sorted();
        write_snapshot(&tmp, self.epoch, dict, &catalog, index)?;
        kill::fire(KillPoint::BeforeSnapshotRename)?;
        // Fault site: a torn publish — the temp snapshot is fully written
        // but the rename never happens, so recovery must keep using the
        // previous snapshot and ignore the stale temp file.
        tir_fault::fire(tir_fault::FaultSite::SnapshotRename)?;
        fs::rename(&tmp, self.dir.join(SNAPSHOT_NAME))?;
        fs::File::open(&self.dir)?.sync_all()?;
        kill::fire(KillPoint::AfterSnapshotRename)?;
        self.last_snapshot_epoch = self.epoch;
        self.stats
            .snapshot_epoch
            .store(self.epoch, Ordering::SeqCst);
        self.stats.snapshots.fetch_add(1, Ordering::SeqCst);
        self.wal.prune(self.epoch)?;
        self.stats
            .wal_segments
            .store(self.wal.stats().segments, Ordering::SeqCst);
        Ok(())
    }

    /// Snapshots iff `snapshot_every` epochs elapsed since the last one.
    /// Returns true if a snapshot was written.
    pub fn maybe_snapshot<I: Persist>(&mut self, index: &I, dict: &Dictionary) -> io::Result<bool> {
        if self.opts.snapshot_every == 0
            || self.epoch - self.last_snapshot_epoch < self.opts.snapshot_every
        {
            return Ok(false);
        }
        self.write_snapshot(index, dict)?;
        Ok(true)
    }
}

/// Applies ops to an index and the catalog mirror; returns how many
/// deletes hit a live object.
fn apply_ops<I: TemporalIrIndex>(
    index: &mut I,
    catalog: &mut HashMap<u32, Object>,
    ops: &[WalOp],
) -> u64 {
    let mut deleted = 0u64;
    for op in ops {
        match op {
            WalOp::Insert(o) => {
                index.insert(o);
                catalog.insert(o.id, o.clone());
            }
            WalOp::Delete(o) => {
                if index.delete(o) {
                    deleted += 1;
                }
                catalog.remove(&o.id);
            }
        }
    }
    deleted
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir_core::Tif;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tir-engine-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn obj(id: u32, st: u64, end: u64, desc: &[u32]) -> Object {
        Object::new(id, st, end, desc.to_vec())
    }

    #[test]
    fn create_apply_recover_roundtrip() {
        let dir = scratch_dir("roundtrip");
        let mut index = Tif::default();
        let dict = Dictionary::from_parts(vec!["a".into(), "b".into()], vec![2, 1]).expect("dict");
        let mut d = Durability::create(&dir, &index, &dict, &[], DurabilityOptions::default())
            .expect("create");
        assert!(Durability::exists(&dir));
        let out = d
            .apply_batch(
                &mut index,
                &[
                    WalOp::Insert(obj(1, 0, 10, &[0, 1])),
                    WalOp::Insert(obj(2, 5, 15, &[0])),
                ],
            )
            .expect("apply");
        assert_eq!(out.epoch, 1);
        d.apply_batch(&mut index, &[WalOp::Delete(obj(2, 5, 15, &[0]))])
            .expect("apply");
        assert_eq!(d.epoch(), 2);
        drop(d);

        // Recovery replays both batches on top of the epoch-0 snapshot.
        let r: Recovered<Tif> =
            Durability::recover(&dir, DurabilityOptions::default()).expect("recover");
        assert_eq!(r.epoch, 2);
        assert_eq!(r.replayed, 2);
        assert_eq!(r.durability.live(), 1);
        let q = tir_core::TimeTravelQuery::new(0, 20, vec![0]);
        assert_eq!(r.index.query(&q), vec![1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_prunes_and_recovery_starts_from_it() {
        let dir = scratch_dir("snapshot");
        let mut index = Tif::default();
        let dict = Dictionary::new();
        let mut d = Durability::create(
            &dir,
            &index,
            &dict,
            &[],
            DurabilityOptions {
                segment_bytes: 1, // rotate every batch
                snapshot_every: 2,
            },
        )
        .expect("create");
        for id in 1..=4u32 {
            d.apply_batch(
                &mut index,
                &[WalOp::Insert(obj(id, 0, u64::from(id), &[0]))],
            )
            .expect("apply");
            d.maybe_snapshot(&index, &dict).expect("maybe");
        }
        assert_eq!(d.snapshot_epoch(), 4);
        drop(d);
        let r: Recovered<Tif> =
            Durability::recover(&dir, DurabilityOptions::default()).expect("recover");
        assert_eq!(r.epoch, 4);
        assert_eq!(r.replayed, 0, "everything was in the snapshot");
        assert_eq!(r.durability.live(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "testing")]
    #[test]
    fn kill_before_sync_loses_the_batch_cleanly() {
        let dir = scratch_dir("killsync");
        let mut index = Tif::default();
        let dict = Dictionary::new();
        let mut d = Durability::create(&dir, &index, &dict, &[], DurabilityOptions::default())
            .expect("create");
        d.apply_batch(&mut index, &[WalOp::Insert(obj(1, 0, 5, &[0]))])
            .expect("apply");
        crate::kill::arm(KillPoint::BeforeWalSync, 0);
        let err = d
            .apply_batch(&mut index, &[WalOp::Insert(obj(2, 0, 5, &[0]))])
            .expect_err("armed point fires");
        assert!(crate::kill::is_simulated_crash(&err));
        crate::kill::disarm();
        assert_eq!(d.epoch(), 1, "failed batch did not advance the epoch");
        drop(d);
        let r: Recovered<Tif> =
            Durability::recover(&dir, DurabilityOptions::default()).expect("recover");
        // The unsynced record may or may not have reached disk (the OS
        // may flush without fsync); both end states are consistent.
        assert!(r.epoch == 1 || r.epoch == 2, "epoch {}", r.epoch);
        let _ = fs::remove_dir_all(&dir);
    }
}
