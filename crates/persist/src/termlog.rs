//! The dictionary sidecar log (`terms.log`): makes term interning
//! durable *independently of the WAL*.
//!
//! The server interns terms under the dictionary lock while the applier
//! owns the WAL, so term ids must be durable before any WAL record can
//! reference them. Each intern appends one record here and fsyncs
//! *before* the write op is enqueued; a crash can therefore leave terms
//! that no surviving op references (harmless — they are re-interned
//! state) but never an op whose term ids are missing.
//!
//! Record: `id: u32 ‖ len: u32 ‖ utf-8 bytes ‖ crc32` (CRC over the
//! first three fields). Recovery replays records with `id ≥` the
//! snapshot's dictionary length, verifies contiguity, and rewrites the
//! log compacted (recovery is single-threaded, the one safe moment).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use tir_invidx::Dictionary;

use crate::cols::{put_u32, read_u32};
use crate::crc::{crc32, Crc32};

/// File name inside the data directory.
pub const TERMLOG_NAME: &str = "terms.log";

/// Append handle for the dictionary sidecar log.
#[derive(Debug)]
pub struct TermLog {
    file: File,
    path: PathBuf,
}

impl TermLog {
    /// Opens (creating if missing) `terms.log` inside `dir`.
    pub fn open(dir: &Path) -> io::Result<TermLog> {
        let path = dir.join(TERMLOG_NAME);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(TermLog { file, path })
    }

    /// Appends one interned term and fsyncs. Must be called before any
    /// op referencing `id` is enqueued.
    pub fn append(&mut self, id: u32, term: &str) -> io::Result<()> {
        tir_fault::fire(tir_fault::FaultSite::TermLogAppend)?;
        let mut rec = Vec::with_capacity(12 + term.len());
        put_u32(&mut rec, id);
        put_u32(&mut rec, term.len() as u32);
        rec.extend_from_slice(term.as_bytes());
        let crc = crc32(&rec);
        put_u32(&mut rec, crc);
        self.file.write_all(&rec)?;
        self.file.sync_all()
    }

    /// Replays the log into `dict`, which already holds the snapshot's
    /// terms: records with `id <` the current length must match what the
    /// dictionary has (idempotent re-plays), records at exactly the
    /// current length extend it, anything else is corruption. A torn
    /// final record (crash mid-append) is truncated away. Afterwards the
    /// log is rewritten compacted to the surviving dictionary.
    pub fn recover(dir: &Path, dict: &mut Dictionary) -> io::Result<bool> {
        let path = dir.join(TERMLOG_NAME);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let corrupt = |pos: usize, msg: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("terms.log@{pos}: {msg}"),
            )
        };
        let mut pos = 0usize;
        let mut truncated = false;
        while pos < bytes.len() {
            // A record that doesn't fully fit is a torn tail iff it is
            // the last thing in the file; truncation handles it below.
            let header_ok = bytes.len() - pos >= 8;
            let (id, len) = if header_ok {
                (
                    read_u32(&bytes, pos).unwrap_or(0),
                    read_u32(&bytes, pos + 4).unwrap_or(0) as usize,
                )
            } else {
                (0, 0)
            };
            let total = 12 + len;
            if !header_ok || bytes.len() - pos < total {
                truncated = true;
                break;
            }
            let body = &bytes[pos..pos + 8 + len];
            let stored = read_u32(&bytes, pos + 8 + len).unwrap_or(0);
            if crc32(body) != stored {
                // CRC damage at the tail is a torn append; earlier it is
                // real corruption.
                if bytes.len() - pos == total {
                    truncated = true;
                    break;
                }
                return Err(corrupt(pos, "record CRC mismatch mid-stream".into()));
            }
            let term = std::str::from_utf8(&bytes[pos + 8..pos + 8 + len])
                .map_err(|_| corrupt(pos, "term is not UTF-8".into()))?;
            let have = dict.len() as u32;
            if id < have {
                if dict.term(id) != Some(term) {
                    return Err(corrupt(
                        pos,
                        format!(
                            "term id {id} is {:?} in the snapshot but {term:?} in the log",
                            dict.term(id)
                        ),
                    ));
                }
            } else if id == have {
                let interned = dict.intern(term);
                if interned != id {
                    return Err(corrupt(
                        pos,
                        format!("term {term:?} re-interned as {interned}, log says {id}"),
                    ));
                }
            } else {
                return Err(corrupt(
                    pos,
                    format!("term id {id} skips ahead of the {have} known terms"),
                ));
            }
            pos += total;
        }

        // Rewrite compacted: one record per dictionary entry, clean tail.
        let tmp = dir.join("terms.log.tmp");
        let mut f = File::create(&tmp)?;
        let mut buf = Vec::new();
        for id in 0..dict.len() as u32 {
            let term = dict.term(id).unwrap_or("");
            let start = buf.len();
            put_u32(&mut buf, id);
            put_u32(&mut buf, term.len() as u32);
            buf.extend_from_slice(term.as_bytes());
            let mut c = Crc32::new();
            c.update(&buf[start..]);
            put_u32(&mut buf, c.finish());
        }
        f.write_all(&buf)?;
        f.sync_all()?;
        fs::rename(&tmp, &path)?;
        File::open(dir)?.sync_all()?;
        Ok(truncated)
    }

    /// The log's path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tir-termlog-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn append_recover_roundtrip() {
        let dir = scratch_dir("roundtrip");
        let mut log = TermLog::open(&dir).expect("open");
        let mut dict = Dictionary::new();
        for term in ["alpha", "beta", "gamma"] {
            let id = dict.intern(term);
            log.append(id, term).expect("append");
        }
        drop(log);
        let mut recovered = Dictionary::new();
        let truncated = TermLog::recover(&dir, &mut recovered).expect("recover");
        assert!(!truncated);
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered.lookup("beta"), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_on_top_of_snapshot_terms_is_idempotent() {
        let dir = scratch_dir("idempotent");
        let mut log = TermLog::open(&dir).expect("open");
        let mut dict = Dictionary::new();
        for term in ["a", "b", "c"] {
            let id = dict.intern(term);
            log.append(id, term).expect("append");
        }
        drop(log);
        // Snapshot already covers "a" and "b": replay verifies them and
        // extends with "c".
        let mut snap =
            Dictionary::from_parts(vec!["a".into(), "b".into()], vec![0, 0]).expect("parts");
        TermLog::recover(&dir, &mut snap).expect("recover");
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.lookup("c"), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_log_compacted() {
        let dir = scratch_dir("torn");
        let mut log = TermLog::open(&dir).expect("open");
        let mut dict = Dictionary::new();
        let id = dict.intern("whole");
        log.append(id, "whole").expect("append");
        drop(log);
        let path = dir.join(TERMLOG_NAME);
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(&[9, 0, 0, 0, 50]).expect("garbage"); // half a header
        drop(f);
        let mut recovered = Dictionary::new();
        let truncated = TermLog::recover(&dir, &mut recovered).expect("recover");
        assert!(truncated);
        assert_eq!(recovered.len(), 1);
        // Compaction left a clean log: a second recovery sees no tear.
        let mut again = Dictionary::new();
        assert!(!TermLog::recover(&dir, &mut again).expect("recover"));
        assert_eq!(again.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn divergent_term_is_corruption() {
        let dir = scratch_dir("diverge");
        let mut log = TermLog::open(&dir).expect("open");
        log.append(0, "logged").expect("append");
        drop(log);
        let mut snap = Dictionary::from_parts(vec!["different".into()], vec![0]).expect("parts");
        assert!(TermLog::recover(&dir, &mut snap).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
