//! The write-ahead log: CRC-per-record segments with rotation, torn-tail
//! truncation, and pruning against the last durable snapshot.
//!
//! ## Record layout (little-endian)
//!
//! | bytes | field |
//! |-------|-------|
//! | 4 | magic `TIRW` |
//! | 4 | payload length |
//! | 8 | epoch the record produces when applied |
//! | … | payload |
//! | 4 | CRC32 over `len ‖ epoch ‖ payload` |
//!
//! The payload is an op batch: `op_count: u32`, then per op a tag byte
//! (1 = insert, 2 = delete), `id: u32`, `st: u64`, `end: u64`,
//! `desc_len: u32`, and `desc_len` element ids. One record per applied
//! batch keeps the WAL in lockstep with the epoch counter: replaying
//! records `snapshot_epoch+1 ..= e` reproduces epoch `e` exactly.
//!
//! ## Segments
//!
//! Records append to `wal-{first_epoch:016x}.log`; when a segment
//! exceeds the rotation threshold the writer fsyncs it, starts
//! `wal-{next_epoch:016x}.log`, and fsyncs the directory so the new name
//! is durable. After a snapshot at epoch `s`, every segment fully
//! covered by the snapshot (a later segment starts at or below `s + 1`)
//! is deleted.
//!
//! ## Recovery
//!
//! [`Wal::replay`] streams records in epoch order across segments. A
//! torn record (short read or CRC mismatch) **at the tail of the last
//! segment** is the signature of a crash mid-append: the tail is
//! truncated away and replay ends. The same damage anywhere else cannot
//! be crash fallout (everything before the tail was fsynced) and is
//! reported as corruption instead.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use tir_core::Object;

use crate::cols::{put_u32, put_u64, read_u32, read_u64};
use crate::crc::crc32;
use crate::kill::{self, KillPoint};

/// First 4 bytes of every WAL record.
pub const RECORD_MAGIC: [u8; 4] = *b"TIRW";
/// Bytes before the payload: magic + length + epoch.
const RECORD_HEADER: usize = 16;
/// Default segment-rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;
/// Refuse records claiming payloads past this bound (corrupt length
/// fields would otherwise drive huge allocations during replay).
const MAX_PAYLOAD: u32 = 256 << 20;

/// One logged write operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert an object.
    Insert(Object),
    /// Delete an object (identified by id; the interval/desc travel along
    /// so indexes that need them for unindexing have them).
    Delete(Object),
}

impl WalOp {
    /// The object inside.
    pub fn object(&self) -> &Object {
        match self {
            WalOp::Insert(o) | WalOp::Delete(o) => o,
        }
    }
}

/// Running WAL counters (mirrored into STATS by the server).
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended since open.
    pub records: u64,
    /// Payload + framing bytes appended since open.
    pub bytes: u64,
    /// `fsync` calls issued since open.
    pub fsyncs: u64,
    /// Segments currently on disk.
    pub segments: u64,
}

/// What [`Wal::replay`] found on disk.
#[derive(Debug, Default)]
pub struct Replayed {
    /// Records in epoch order: `(epoch, ops)`.
    pub batches: Vec<(u64, Vec<WalOp>)>,
    /// True if a torn tail was truncated away.
    pub truncated_tail: bool,
}

fn segment_name(first_epoch: u64) -> String {
    format!("wal-{first_epoch:016x}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(first) = entry.file_name().to_str().and_then(parse_segment_name) {
            segs.push((first, entry.path()));
        }
    }
    segs.sort_unstable_by_key(|(first, _)| *first);
    Ok(segs)
}

/// Serializes an op batch into the record payload.
pub fn encode_ops(ops: &[WalOp]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, ops.len() as u32);
    for op in ops {
        let (tag, o) = match op {
            WalOp::Insert(o) => (1u8, o),
            WalOp::Delete(o) => (2u8, o),
        };
        buf.push(tag);
        put_u32(&mut buf, o.id);
        put_u64(&mut buf, o.interval.st);
        put_u64(&mut buf, o.interval.end);
        put_u32(&mut buf, o.desc.len() as u32);
        for &e in &o.desc {
            put_u32(&mut buf, e);
        }
    }
    buf
}

/// Parses a record payload back into ops. `at` names the record in
/// corruption errors.
pub fn decode_ops(payload: &[u8], at: &str) -> io::Result<Vec<WalOp>> {
    let corrupt = |msg: String| io::Error::new(io::ErrorKind::InvalidData, format!("{at}: {msg}"));
    let n = read_u32(payload, 0).ok_or_else(|| corrupt("payload shorter than op count".into()))?
        as usize;
    let mut ops = Vec::with_capacity(n.min(4096));
    let mut pos = 4usize;
    for i in 0..n {
        let tag = *payload
            .get(pos)
            .ok_or_else(|| corrupt(format!("op[{i}] tag past payload end")))?;
        pos += 1;
        let id = read_u32(payload, pos).ok_or_else(|| corrupt(format!("op[{i}] id truncated")))?;
        let st = read_u64(payload, pos + 4)
            .ok_or_else(|| corrupt(format!("op[{i}] start truncated")))?;
        let end =
            read_u64(payload, pos + 12).ok_or_else(|| corrupt(format!("op[{i}] end truncated")))?;
        let dlen = read_u32(payload, pos + 20)
            .ok_or_else(|| corrupt(format!("op[{i}] desc length truncated")))?
            as usize;
        pos += 24;
        let mut desc = Vec::with_capacity(dlen.min(4096));
        for j in 0..dlen {
            desc.push(
                read_u32(payload, pos + j * 4)
                    .ok_or_else(|| corrupt(format!("op[{i}] desc[{j}] truncated")))?,
            );
        }
        pos += dlen * 4;
        let o = Object::new(id, st, end, desc);
        ops.push(match tag {
            1 => WalOp::Insert(o),
            2 => WalOp::Delete(o),
            other => return Err(corrupt(format!("op[{i}] unknown tag {other}"))),
        });
    }
    if pos != payload.len() {
        return Err(corrupt(format!(
            "{} trailing payload bytes after {n} ops",
            payload.len() - pos
        )));
    }
    Ok(ops)
}

/// The append side of the log: an open active segment plus rotation
/// state. Single-writer by construction (it lives inside the applier).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    active: File,
    active_path: PathBuf,
    active_first_epoch: u64,
    active_len: u64,
    segment_bytes: u64,
    stats: WalStats,
}

impl Wal {
    /// Opens the WAL in `dir` for appending; the next record will carry
    /// `next_epoch`. Creates the first segment if none exists; otherwise
    /// appends to the newest one (call [`Wal::replay`] first so the tail
    /// is clean).
    pub fn open(dir: &Path, next_epoch: u64, segment_bytes: u64) -> io::Result<Wal> {
        let segs = list_segments(dir)?;
        let n_segs = segs.len() as u64;
        let (first_epoch, path, created) = match segs.last() {
            Some((first, path)) => (*first, path.clone(), false),
            None => (next_epoch, dir.join(segment_name(next_epoch)), true),
        };
        let active = OpenOptions::new().create(true).append(true).open(&path)?;
        let active_len = active.metadata()?.len();
        if created {
            fsync_dir(dir)?;
        }
        Ok(Wal {
            dir: dir.to_path_buf(),
            active,
            active_path: path,
            active_first_epoch: first_epoch,
            active_len,
            segment_bytes,
            stats: WalStats {
                segments: n_segs.max(1),
                ..WalStats::default()
            },
        })
    }

    /// Counters since open.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Appends one record (rotating first if the active segment is
    /// full). Does **not** fsync — call [`Wal::sync`] before treating
    /// the record as durable.
    pub fn append(&mut self, epoch: u64, ops: &[WalOp]) -> io::Result<()> {
        if self.active_len >= self.segment_bytes {
            self.rotate(epoch)?;
        }
        let payload = encode_ops(ops);
        let mut rec = Vec::with_capacity(RECORD_HEADER + payload.len() + 4);
        rec.extend_from_slice(&RECORD_MAGIC);
        put_u32(&mut rec, payload.len() as u32);
        put_u64(&mut rec, epoch);
        rec.extend_from_slice(&payload);
        let crc = crc32(&rec[4..]);
        put_u32(&mut rec, crc);

        // Kill point: a torn tail — only a prefix of the record lands.
        if let Err(e) = kill::fire(KillPoint::MidWalAppend) {
            let cut = rec.len() / 2;
            self.active.write_all(&rec[..cut])?;
            // analyze:allow(error-swallow): simulated crash path — the kill error is returned either way; the sync only makes the torn prefix durable for the recovery test
            let _ = self.active.sync_all();
            return Err(e);
        }
        // Fault site: an injected ENOSPC-style failure, or a short write
        // that lands a torn prefix of the record and then fails — the
        // live-process twin of the MidWalAppend kill point above.
        match tir_fault::check(tir_fault::FaultSite::WalAppend) {
            tir_fault::FaultAction::ShortWrite => {
                let cut = rec.len() / 2;
                self.active.write_all(&rec[..cut])?;
                self.active_len += cut as u64;
                // analyze:allow(error-swallow): injected-fault path — the injected error is returned either way; the sync only makes the torn prefix durable for the chaos recovery step
                let _ = self.active.sync_all();
                return Err(tir_fault::injected_error(tir_fault::FaultSite::WalAppend));
            }
            tir_fault::FaultAction::None | tir_fault::FaultAction::Stall(_) => {}
            _ => return Err(tir_fault::injected_error(tir_fault::FaultSite::WalAppend)),
        }
        self.active.write_all(&rec)?;
        self.active_len += rec.len() as u64;
        self.stats.records += 1;
        self.stats.bytes += rec.len() as u64;
        Ok(())
    }

    /// Fsyncs the active segment — the durability barrier.
    pub fn sync(&mut self) -> io::Result<()> {
        tir_fault::fire(tir_fault::FaultSite::WalSync)?;
        self.active.sync_all()?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    fn rotate(&mut self, next_epoch: u64) -> io::Result<()> {
        self.active.sync_all()?;
        self.stats.fsyncs += 1;
        let path = self.dir.join(segment_name(next_epoch));
        self.active = OpenOptions::new().create(true).append(true).open(&path)?;
        self.active_path = path;
        self.active_first_epoch = next_epoch;
        self.active_len = 0;
        self.stats.segments += 1;
        fsync_dir(&self.dir)
    }

    /// Deletes every segment fully covered by a snapshot at
    /// `snapshot_epoch`: a segment goes iff it is not the active one and
    /// a later segment starts at or below `snapshot_epoch + 1`.
    pub fn prune(&mut self, snapshot_epoch: u64) -> io::Result<u64> {
        let segs = list_segments(&self.dir)?;
        let mut removed = 0u64;
        for (i, (_, path)) in segs.iter().enumerate() {
            let covered = segs
                .get(i + 1)
                .map(|(next_first, _)| *next_first <= snapshot_epoch + 1)
                .unwrap_or(false);
            if covered && *path != self.active_path {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            self.stats.segments = self.stats.segments.saturating_sub(removed);
            fsync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Reads every record with epoch > `snapshot_epoch` from `dir`, in
    /// epoch order, truncating a torn tail in the **last** segment.
    /// Corruption anywhere else is a hard error.
    pub fn replay(dir: &Path, snapshot_epoch: u64) -> io::Result<Replayed> {
        let segs = list_segments(dir)?;
        let mut out = Replayed::default();
        let mut expected_next: Option<u64> = None;
        for (si, (seg_first, path)) in segs.iter().enumerate() {
            let last_segment = si + 1 == segs.len();
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let mut pos = 0usize;
            let mut keep = 0usize; // bytes of clean records
            loop {
                if pos == bytes.len() {
                    break;
                }
                let at = format!("{}@{pos}", path.display());
                let torn = |msg: &str| -> io::Result<bool> {
                    if last_segment {
                        Ok(true) // truncate below
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("wal {at}: {msg} in a non-final segment"),
                        ))
                    }
                };
                if bytes.len() - pos < RECORD_HEADER && torn("truncated record header")? {
                    break;
                }
                if bytes[pos..pos + 4] != RECORD_MAGIC && torn("bad record magic")? {
                    break;
                }
                let plen = read_u32(&bytes, pos + 4).unwrap_or(0);
                if plen > MAX_PAYLOAD && torn(&format!("implausible payload length {plen}"))? {
                    break;
                }
                let total = RECORD_HEADER + plen as usize + 4;
                if bytes.len() - pos < total && torn("truncated record body")? {
                    break;
                }
                let body = &bytes[pos + 4..pos + RECORD_HEADER + plen as usize];
                let stored_crc = read_u32(&bytes, pos + RECORD_HEADER + plen as usize).unwrap_or(0);
                if crc32(body) != stored_crc && torn("record CRC mismatch")? {
                    break;
                }
                let epoch = read_u64(&bytes, pos + 8).unwrap_or(0);
                if let Some(want) = expected_next {
                    if epoch != want {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("wal {at}: epoch {epoch}, expected {want} (gap or reorder)"),
                        ));
                    }
                } else if si == 0 && epoch > snapshot_epoch + 1 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "wal {at}: first record is epoch {epoch} but the snapshot covers only {snapshot_epoch} (missing segment?)"
                        ),
                    ));
                } else if epoch < *seg_first {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "wal {at}: epoch {epoch} below the segment's first epoch {seg_first}"
                        ),
                    ));
                }
                expected_next = Some(epoch + 1);
                let payload = &bytes[pos + RECORD_HEADER..pos + RECORD_HEADER + plen as usize];
                if epoch > snapshot_epoch {
                    out.batches.push((epoch, decode_ops(payload, &at)?));
                }
                pos += total;
                keep = pos;
            }
            if keep < bytes.len() {
                // Torn tail in the last segment: truncate it away so the
                // next append starts on a clean boundary.
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(keep as u64)?;
                f.sync_all()?;
                out.truncated_tail = true;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tir-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn op(id: u32, st: u64, end: u64) -> WalOp {
        WalOp::Insert(Object::new(id, st, end, vec![1, 2, 3]))
    }

    #[test]
    fn roundtrip_and_replay() {
        let dir = scratch_dir("roundtrip");
        let mut wal = Wal::open(&dir, 1, DEFAULT_SEGMENT_BYTES).expect("open");
        wal.append(1, &[op(10, 0, 5)]).expect("append");
        wal.append(
            2,
            &[
                op(11, 3, 9),
                WalOp::Delete(Object::new(10, 0, 5, vec![1, 2, 3])),
            ],
        )
        .expect("append");
        wal.sync().expect("sync");
        drop(wal);
        let r = Wal::replay(&dir, 0).expect("replay");
        assert!(!r.truncated_tail);
        assert_eq!(r.batches.len(), 2);
        assert_eq!(r.batches[0].0, 1);
        assert_eq!(r.batches[1].1.len(), 2);
        // Replay above a snapshot skips covered records.
        let r = Wal::replay(&dir, 1).expect("replay");
        assert_eq!(r.batches.len(), 1);
        assert_eq!(r.batches[0].0, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = scratch_dir("torn");
        let mut wal = Wal::open(&dir, 1, DEFAULT_SEGMENT_BYTES).expect("open");
        wal.append(1, &[op(1, 0, 1)]).expect("append");
        wal.sync().expect("sync");
        let seg = dir.join(segment_name(1));
        let clean_len = fs::metadata(&seg).expect("meta").len();
        drop(wal);
        // Simulate a crash mid-append: garbage half-record at the tail.
        let mut f = OpenOptions::new()
            .append(true)
            .open(&seg)
            .expect("open seg");
        f.write_all(b"TIRW\xFF\x00").expect("write garbage");
        drop(f);
        let r = Wal::replay(&dir, 0).expect("replay");
        assert!(r.truncated_tail);
        assert_eq!(r.batches.len(), 1);
        assert_eq!(fs::metadata(&seg).expect("meta").len(), clean_len);
        // The log accepts appends again after truncation.
        let mut wal = Wal::open(&dir, 2, DEFAULT_SEGMENT_BYTES).expect("reopen");
        wal.append(2, &[op(2, 1, 2)]).expect("append");
        wal.sync().expect("sync");
        drop(wal);
        let r = Wal::replay(&dir, 0).expect("replay");
        assert_eq!(r.batches.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_prune() {
        let dir = scratch_dir("rotate");
        // Tiny threshold: every record rotates into its own segment.
        let mut wal = Wal::open(&dir, 1, 1).expect("open");
        for e in 1..=4u64 {
            wal.append(e, &[op(e as u32, 0, e)]).expect("append");
            wal.sync().expect("sync");
        }
        assert_eq!(list_segments(&dir).expect("list").len(), 4);
        // Snapshot at epoch 3 covers segments whose successor starts ≤ 4.
        wal.prune(3).expect("prune");
        let left = list_segments(&dir).expect("list");
        assert_eq!(left.len(), 1, "only the active segment survives: {left:?}");
        let r = Wal::replay(&dir, 3).expect("replay");
        assert_eq!(r.batches.len(), 1);
        assert_eq!(r.batches[0].0, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_in_non_final_segment_is_a_hard_error() {
        let dir = scratch_dir("nonfinal-trunc");
        // Tiny threshold: each record rotates into its own segment.
        let mut wal = Wal::open(&dir, 1, 1).expect("open");
        wal.append(1, &[op(1, 0, 1)]).expect("append");
        wal.sync().expect("sync");
        wal.append(2, &[op(2, 0, 2)]).expect("append");
        wal.sync().expect("sync");
        drop(wal);
        // Chop the FIRST segment mid-record: truncation-shaped damage
        // (no byte flips, exactly what a torn tail looks like). Were
        // this the final segment it would be silently truncated away;
        // in a non-final segment it means an acked batch is gone while
        // later segments still replay, so it must be a hard error.
        let seg = dir.join(segment_name(1));
        let len = fs::metadata(&seg).expect("meta").len();
        assert!(len > 5);
        let f = OpenOptions::new().write(true).open(&seg).expect("open seg");
        f.set_len(len - 5).expect("truncate");
        drop(f);
        let err = Wal::replay(&dir, 0).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("non-final segment"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_mid_stream_is_a_hard_error() {
        let dir = scratch_dir("midcorrupt");
        let mut wal = Wal::open(&dir, 1, 1).expect("open");
        wal.append(1, &[op(1, 0, 1)]).expect("append");
        wal.sync().expect("sync");
        wal.append(2, &[op(2, 0, 2)]).expect("append");
        wal.sync().expect("sync");
        drop(wal);
        // Flip a payload byte in the FIRST (non-final) segment.
        let seg = dir.join(segment_name(1));
        let mut bytes = fs::read(&seg).expect("read");
        let mid = bytes.len() - 6;
        bytes[mid] ^= 0xFF;
        fs::write(&seg, &bytes).expect("write");
        let err = Wal::replay(&dir, 0).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let ops = vec![op(5, 1, 2)];
        let mut payload = encode_ops(&ops);
        assert_eq!(decode_ops(&payload, "t").expect("ok"), ops);
        payload.push(0); // trailing byte
        assert!(decode_ops(&payload, "t").is_err());
        payload.pop();
        payload[4] = 9; // unknown tag
        assert!(decode_ops(&payload, "t").is_err());
        assert!(decode_ops(&payload[..7], "t").is_err());
    }
}
