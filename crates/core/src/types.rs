//! Object model of temporal IR: intervals, objects, and time-travel
//! queries (Section 2.1 of the paper).

/// Object identifier. Must be `< 2^31`; the high bit is reserved for
/// tombstones inside the indexes.
pub type ObjectId = u32;

/// Descriptive element identifier (a term, track id, product id, …) from
/// the global dictionary.
pub type ElemId = u32;

/// Raw timestamp in the collection's time domain.
pub type Timestamp = u64;

/// A closed time interval `[st, end]` with `st <= end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive start.
    pub st: Timestamp,
    /// Inclusive end.
    pub end: Timestamp,
}

impl Interval {
    /// Creates an interval, validating `st <= end`.
    pub fn new(st: Timestamp, end: Timestamp) -> Self {
        assert!(st <= end, "invalid interval [{st}, {end}]");
        Interval { st, end }
    }

    /// Inclusive overlap test (Definition `Overlap` in Section 2.1).
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.st <= other.end && other.st <= self.end
    }

    /// Interval duration counting both endpoints.
    #[inline]
    pub fn duration(&self) -> u64 {
        self.end - self.st + 1
    }
}

/// A data object `⟨id, [tst, tend], d⟩`: identifier, lifespan, and
/// descriptive element set.
///
/// The description is stored sorted and duplicate-free (set semantics, as
/// assumed by the paper; bag semantics are future work there too).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// Object identifier.
    pub id: ObjectId,
    /// Lifespan.
    pub interval: Interval,
    /// Sorted, duplicate-free descriptive elements.
    pub desc: Vec<ElemId>,
}

impl Object {
    /// Creates an object, normalizing the description to a sorted set.
    pub fn new(id: ObjectId, st: Timestamp, end: Timestamp, mut desc: Vec<ElemId>) -> Self {
        assert!(id & (1 << 31) == 0, "object id {id} uses the tombstone bit");
        desc.sort_unstable();
        desc.dedup();
        Object {
            id,
            interval: Interval::new(st, end),
            desc,
        }
    }

    /// True if the object's description contains every element of `elems`
    /// (`o.d ⊇ q.d`). Both sides must be sorted.
    pub fn contains_all(&self, elems: &[ElemId]) -> bool {
        debug_assert!(elems.windows(2).all(|w| w[0] <= w[1]));
        let mut it = self.desc.iter();
        'outer: for &e in elems {
            for &d in it.by_ref() {
                if d == e {
                    continue 'outer;
                }
                if d > e {
                    return false;
                }
            }
            return false;
        }
        true
    }
}

/// A time-travel IR query `q = ⟨[q.tst, q.tend], q.d⟩` (Definition 2.1):
/// retrieve all objects whose interval overlaps `[st, end]` and whose
/// description contains all of `elems`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeTravelQuery {
    /// Query interval.
    pub interval: Interval,
    /// Required elements (`q.d`); order irrelevant, duplicates ignored.
    pub elems: Vec<ElemId>,
}

impl TimeTravelQuery {
    /// Creates a query.
    pub fn new(st: Timestamp, end: Timestamp, mut elems: Vec<ElemId>) -> Self {
        elems.sort_unstable();
        elems.dedup();
        TimeTravelQuery {
            interval: Interval::new(st, end),
            elems,
        }
    }

    /// True if `o` satisfies both query predicates.
    pub fn matches(&self, o: &Object) -> bool {
        self.interval.overlaps(&o.interval) && o.contains_all(&self.elems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_inclusive_boundaries() {
        let a = Interval::new(5, 10);
        assert!(a.overlaps(&Interval::new(10, 12)));
        assert!(a.overlaps(&Interval::new(1, 5)));
        assert!(!a.overlaps(&Interval::new(11, 12)));
        assert!(!a.overlaps(&Interval::new(0, 4)));
        assert_eq!(a.duration(), 6);
    }

    #[test]
    fn object_normalizes_description() {
        let o = Object::new(1, 0, 10, vec![3, 1, 3, 2]);
        assert_eq!(o.desc, vec![1, 2, 3]);
    }

    #[test]
    fn contains_all_subset_logic() {
        let o = Object::new(1, 0, 10, vec![1, 4, 9]);
        assert!(o.contains_all(&[]));
        assert!(o.contains_all(&[4]));
        assert!(o.contains_all(&[1, 9]));
        assert!(!o.contains_all(&[2]));
        assert!(!o.contains_all(&[1, 5]));
        assert!(!o.contains_all(&[9, 10]));
    }

    #[test]
    fn query_matches() {
        let o = Object::new(1, 5, 9, vec![0, 2]);
        assert!(TimeTravelQuery::new(9, 20, vec![0]).matches(&o));
        assert!(!TimeTravelQuery::new(10, 20, vec![0]).matches(&o));
        assert!(!TimeTravelQuery::new(5, 9, vec![1]).matches(&o));
        assert!(TimeTravelQuery::new(5, 9, vec![2, 0, 2]).matches(&o));
    }
}
