//! **tIF+Sharding** (Anand et al., Section 2.2): every postings list is
//! horizontally partitioned into *shards* ordered by `o.tst` that (ideally)
//! satisfy the staircase property — start order implies end order — so a
//! temporal range maps to a contiguous run of entries. No replication, no
//! de-duplication. Impact lists accelerate shard scans.

use std::collections::HashMap;

use crate::collection::Collection;
use crate::freq::FreqTable;
use crate::index_trait::TemporalIrIndex;
use crate::types::{Object, ObjectId, TimeTravelQuery, Timestamp};
use tir_invidx::planner::{Kernel, QueryScratch};
use tir_invidx::{live, TOMBSTONE};

/// Entries per impact-list block.
pub const IMPACT_STRIDE: usize = 64;

/// One shard: entries sorted by start; `staircase` records whether ends
/// are also non-decreasing (ideal shards are, cost-merged ones may not
/// be). The impact list stores the maximum end per block of
/// [`IMPACT_STRIDE`] entries so scans skip blocks that cannot qualify.
#[derive(Debug, Clone, Default)]
struct Shard {
    ids: Vec<u32>,
    sts: Vec<Timestamp>,
    ends: Vec<Timestamp>,
    staircase: bool,
    impact: Vec<Timestamp>,
}

impl Shard {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn rebuild_impact(&mut self) {
        self.impact.clear();
        for chunk in self.ends.chunks(IMPACT_STRIDE) {
            self.impact.push(chunk.iter().copied().max().unwrap_or(0));
        }
    }

    /// Calls `f(i)` for every live entry overlapping `[q_st, q_end]`.
    fn for_each_qualifying(&self, q_st: Timestamp, q_end: Timestamp, mut f: impl FnMut(usize)) {
        // Entries starting after q_end cannot qualify: prefix by start.
        let hi = self.sts.partition_point(|&st| st <= q_end);
        let lo = if self.staircase {
            // Ends are sorted too: entries ending before q_st are a prefix.
            self.ends[..hi].partition_point(|&end| end < q_st)
        } else {
            0
        };
        if self.staircase {
            for i in lo..hi {
                if live(self.ids[i]) {
                    f(i);
                }
            }
        } else {
            // Relaxed shard: walk blocks, skipping those whose max end is
            // below q_st (the impact list).
            let mut i = lo;
            while i < hi {
                let block = i / IMPACT_STRIDE;
                let block_end = ((block + 1) * IMPACT_STRIDE).min(hi);
                if self.impact.get(block).copied().unwrap_or(u64::MAX) < q_st {
                    i = block_end;
                    continue;
                }
                while i < block_end {
                    if self.ends[i] >= q_st && live(self.ids[i]) {
                        f(i);
                    }
                    i += 1;
                }
            }
        }
    }

    fn size_bytes(&self) -> usize {
        self.ids.capacity() * 4
            + (self.sts.capacity() + self.ends.capacity() + self.impact.capacity()) * 8
    }
}

/// Build/merge configuration for [`TifSharding`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardingConfig {
    /// Cap on shards per postings list; `None` uses the cost heuristic
    /// `⌈sqrt(list length)⌉` (bounded to 512), approximating the
    /// cost-aware merging of ideal shards in Anand et al.
    pub max_shards_per_list: Option<usize>,
}

/// The tIF+Sharding index.
#[derive(Debug, Clone)]
pub struct TifSharding {
    lists: HashMap<u32, Vec<Shard>>,
    freqs: FreqTable,
    config: ShardingConfig,
}

impl TifSharding {
    /// Builds with the default cost-heuristic shard cap.
    pub fn build(coll: &Collection) -> Self {
        Self::build_with_config(coll, ShardingConfig::default())
    }

    /// Builds with an explicit configuration.
    pub fn build_with_config(coll: &Collection, config: ShardingConfig) -> Self {
        // Group postings per element first.
        let mut per_elem: HashMap<u32, Vec<(Timestamp, Timestamp, u32)>> = HashMap::new();
        for o in coll.objects() {
            for &e in &o.desc {
                per_elem
                    .entry(e)
                    .or_default()
                    .push((o.interval.st, o.interval.end, o.id));
            }
        }
        let mut lists = HashMap::with_capacity(per_elem.len());
        for (e, mut entries) in per_elem {
            entries.sort_unstable();
            lists.insert(e, build_shards(&entries, config));
        }
        TifSharding {
            lists,
            freqs: FreqTable::from_counts(coll.freqs()),
            config,
        }
    }

    /// Number of shards of an element's list (0 if unknown).
    pub fn num_shards(&self, e: u32) -> usize {
        self.lists.get(&e).map(Vec::len).unwrap_or(0)
    }

    /// Total stored postings (no replication in sharding).
    pub fn num_postings(&self) -> usize {
        self.lists
            .values()
            .flat_map(|s| s.iter())
            .map(Shard::len)
            .sum()
    }

    /// Document frequency of an element as tracked by the planner.
    pub fn freq(&self, e: u32) -> u32 {
        self.freqs.get(e)
    }

    /// Calls `f(element, shard)` for every shard, in unspecified element
    /// order (introspection for validators).
    pub fn for_each_shard(&self, mut f: impl FnMut(u32, ShardView<'_>)) {
        for (&e, shards) in &self.lists {
            for s in shards {
                f(
                    e,
                    ShardView {
                        ids: &s.ids,
                        sts: &s.sts,
                        ends: &s.ends,
                        staircase: s.staircase,
                        impact: &s.impact,
                    },
                );
            }
        }
    }
}

/// A read-only view of one shard (introspection for validators).
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    /// Object ids (tombstone high bit marks logical deletes).
    pub ids: &'a [u32],
    /// Interval starts, non-decreasing.
    pub sts: &'a [Timestamp],
    /// Interval ends; non-decreasing iff `staircase`.
    pub ends: &'a [Timestamp],
    /// Whether the shard satisfies the staircase property.
    pub staircase: bool,
    /// Per-[`IMPACT_STRIDE`]-block maximum end (relaxed shards only).
    pub impact: &'a [Timestamp],
}

/// Greedy first-fit decomposition into ideal (staircase) shards — with the
/// entries sorted by start, placing each into the first shard whose tail
/// end is not larger yields the minimal number of staircase shards — then
/// cost-aware merging down to the configured cap.
fn build_shards(entries: &[(Timestamp, Timestamp, u32)], config: ShardingConfig) -> Vec<Shard> {
    debug_assert!(entries.windows(2).all(|w| w[0] <= w[1]));
    let mut shards: Vec<Shard> = Vec::new();
    for &(st, end, id) in entries {
        let slot = shards
            .iter()
            .position(|s| s.ends.last().is_none_or(|&tail| tail <= end));
        let slot = match slot {
            Some(i) => i,
            None => {
                shards.push(Shard {
                    staircase: true,
                    ..Default::default()
                });
                shards.len() - 1
            }
        };
        let shard = &mut shards[slot];
        shard.staircase = true;
        shard.ids.push(id);
        shard.sts.push(st);
        shard.ends.push(end);
    }
    let cap = config
        .max_shards_per_list
        .unwrap_or_else(|| ((entries.len() as f64).sqrt().ceil() as usize).clamp(1, 512));
    while shards.len() > cap {
        // Merge the two smallest shards: cheapest extra scan cost.
        let (mut a, mut b) = (0, 1);
        for i in 0..shards.len() {
            if shards[i].len() < shards[a].len() {
                b = a;
                a = i;
            } else if i != a && shards[i].len() < shards[b].len() {
                b = i;
            }
        }
        let (a, b) = (a.min(b), a.max(b));
        let small = shards.swap_remove(b);
        let big = &mut shards[a];
        let mut merged: Vec<(Timestamp, Timestamp, u32)> = big
            .sts
            .iter()
            .zip(&big.ends)
            .zip(&big.ids)
            .map(|((&s, &e), &i)| (s, e, i))
            .chain(
                small
                    .sts
                    .iter()
                    .zip(&small.ends)
                    .zip(&small.ids)
                    .map(|((&s, &e), &i)| (s, e, i)),
            )
            .collect();
        merged.sort_unstable();
        big.ids = merged.iter().map(|&(_, _, i)| i).collect();
        big.sts = merged.iter().map(|&(s, _, _)| s).collect();
        big.ends = merged.iter().map(|&(_, e, _)| e).collect();
        big.staircase = big.ends.windows(2).all(|w| w[0] <= w[1]);
    }
    for s in &mut shards {
        if !s.staircase {
            s.rebuild_impact();
        }
    }
    // Re-check staircase after merging (merge may coincidentally keep it).
    for s in &mut shards {
        if s.staircase {
            debug_assert!(s.ends.windows(2).all(|w| w[0] <= w[1]));
        }
    }
    shards
}

impl TemporalIrIndex for TifSharding {
    fn name(&self) -> &'static str {
        "tIF+Sharding"
    }

    fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        self.query_into(q, &mut scratch, &mut out);
        out
    }

    fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<ObjectId>) {
        scratch.reset();
        self.freqs.plan_into(&q.elems, &mut scratch.plan);
        if scratch.plan.is_empty() {
            return;
        }
        let (q_st, q_end) = (q.interval.st, q.interval.end);

        let first = scratch.plan[0];
        let mut scanned = 0u64;
        if let Some(shards) = self.lists.get(&first) {
            for s in shards {
                s.for_each_qualifying(q_st, q_end, |i| {
                    scanned += 1;
                    scratch.cands.push(s.ids[i] & !TOMBSTONE);
                });
            }
        }
        scratch.note(Kernel::Merge, scanned);

        // Remaining elements: probe the candidate set with each shard's
        // qualifying ids; take-once probes replace the per-round
        // binary-search scans and candidate re-sorts.
        for pi in 1..scratch.plan.len() {
            if scratch.cands.is_empty() {
                break;
            }
            let e = scratch.plan[pi];
            let mut cands = std::mem::take(&mut scratch.cands);
            scratch.load_candidates(&cands, 0);
            cands.clear();
            let mut probed = 0u64;
            if let Some(shards) = self.lists.get(&e) {
                for s in shards {
                    s.for_each_qualifying(q_st, q_end, |i| {
                        probed += 1;
                        let id = s.ids[i] & !TOMBSTONE;
                        if scratch.probe_take(id) {
                            cands.push(id);
                        }
                    });
                }
            }
            scratch.note_probed(probed);
            scratch.end_probe();
            scratch.cands = cands;
        }
        scratch.take_into(out);
    }

    fn insert(&mut self, o: &Object) {
        for &e in &o.desc {
            let shards = self.lists.entry(e).or_default();
            let (st, end, id) = (o.interval.st, o.interval.end, o.id);
            // First shard where inserting keeps both orders (staircase) or
            // at least the start order (relaxed).
            let mut placed = false;
            for s in shards.iter_mut() {
                let pos = s.sts.partition_point(|&x| x <= st);
                let stair_ok = s.staircase
                    && (pos == 0 || s.ends[pos - 1] <= end)
                    && (pos == s.len() || end <= s.ends[pos]);
                if stair_ok || !s.staircase {
                    s.ids.insert(pos, id);
                    s.sts.insert(pos, st);
                    s.ends.insert(pos, end);
                    if !s.staircase {
                        s.rebuild_impact();
                    }
                    placed = true;
                    break;
                }
            }
            if !placed {
                shards.push(Shard {
                    ids: vec![id],
                    sts: vec![st],
                    ends: vec![end],
                    staircase: true,
                    impact: Vec::new(),
                });
                // Respect the configured cap loosely: merging on every
                // insert would be wasteful, so only merge when doubled.
                let cap = self.config.max_shards_per_list.unwrap_or(512).max(1);
                if shards.len() > cap * 2 {
                    let mut entries: Vec<(Timestamp, Timestamp, u32)> = shards
                        .iter()
                        .flat_map(|s| {
                            s.sts
                                .iter()
                                .zip(&s.ends)
                                .zip(&s.ids)
                                .map(|((&a, &b), &i)| (a, b, i))
                                .collect::<Vec<_>>()
                        })
                        .collect();
                    entries.sort_unstable();
                    *shards = build_shards(&entries, self.config);
                }
            }
            self.freqs.bump(e);
        }
    }

    fn delete(&mut self, o: &Object) -> bool {
        let mut any = false;
        for &e in &o.desc {
            if let Some(shards) = self.lists.get_mut(&e) {
                'next_elem: for s in shards.iter_mut() {
                    // Entries with this start form a contiguous run.
                    let lo = s.sts.partition_point(|&x| x < o.interval.st);
                    let hi = s.sts.partition_point(|&x| x <= o.interval.st);
                    for i in lo..hi {
                        if s.ids[i] == o.id {
                            s.ids[i] |= TOMBSTONE;
                            self.freqs.drop_one(e);
                            any = true;
                            break 'next_elem;
                        }
                    }
                }
            }
        }
        any
    }

    fn size_bytes(&self) -> usize {
        self.lists
            .values()
            .map(|shards| {
                shards.iter().map(Shard::size_bytes).sum::<usize>()
                    + shards.capacity() * std::mem::size_of::<Shard>()
                    + 16
            })
            .sum::<usize>()
            + self.freqs.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BruteForce;

    #[test]
    fn running_example() {
        let coll = Collection::running_example();
        let idx = TifSharding::build(&coll);
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let mut got = idx.query(&q);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 6]);
    }

    #[test]
    fn ideal_shards_satisfy_staircase() {
        let entries: Vec<(Timestamp, Timestamp, u32)> =
            vec![(0, 10, 1), (1, 5, 2), (2, 12, 3), (3, 4, 4), (4, 20, 5)];
        let shards = build_shards(
            &entries,
            ShardingConfig {
                max_shards_per_list: Some(100),
            },
        );
        for s in &shards {
            assert!(s.staircase);
            assert!(s.sts.windows(2).all(|w| w[0] <= w[1]));
            assert!(s.ends.windows(2).all(|w| w[0] <= w[1]));
        }
        let total: usize = shards.iter().map(Shard::len).sum();
        assert_eq!(total, entries.len());
    }

    #[test]
    fn merging_respects_cap() {
        let entries: Vec<(Timestamp, Timestamp, u32)> = (0..100u32)
            .map(|i| (i as u64, 200 - i as u64, i)) // anti-staircase: 100 ideal shards
            .collect();
        let ideal = build_shards(
            &entries,
            ShardingConfig {
                max_shards_per_list: Some(1000),
            },
        );
        assert_eq!(ideal.len(), 100);
        let capped = build_shards(
            &entries,
            ShardingConfig {
                max_shards_per_list: Some(4),
            },
        );
        assert!(capped.len() <= 4);
        let total: usize = capped.iter().map(Shard::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn matches_oracle_on_example_grid() {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        for cap in [1usize, 2, 100] {
            let idx = TifSharding::build_with_config(
                &coll,
                ShardingConfig {
                    max_shards_per_list: Some(cap),
                },
            );
            for st in 0..16u64 {
                for end in st..16 {
                    for elems in [vec![0], vec![2], vec![0, 2], vec![1, 2]] {
                        let q = TimeTravelQuery::new(st, end, elems);
                        let mut got = idx.query(&q);
                        got.sort_unstable();
                        assert_eq!(got, bf.answer(&q), "cap={cap} q={q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn updates_match_oracle() {
        let coll = Collection::running_example();
        let mut idx = TifSharding::build(&coll);
        let mut bf = BruteForce::build(coll.objects());
        let o = Object::new(8, 1, 14, vec![0, 2]);
        idx.insert(&o);
        bf.insert(&o);
        assert!(idx.delete(coll.get(1)));
        bf.delete(coll.get(1));
        assert!(!idx.delete(coll.get(1)));
        for (st, end) in [(0u64, 15u64), (5, 9), (0, 2)] {
            let q = TimeTravelQuery::new(st, end, vec![0, 2]);
            let mut got = idx.query(&q);
            got.sort_unstable();
            assert_eq!(got, bf.answer(&q));
        }
    }
}
