//! Temporal-IR joins (extension; Section 7 names joins as future work).
//!
//! Two flavours over a pair of collections `A`, `B`:
//!
//! * [`temporal_common_elements_join`] — all pairs `(a, b)` whose
//!   intervals overlap and whose descriptions share at least
//!   `min_common` elements (e.g. "sessions that listened to ≥ 2 of the
//!   same tracks at the same time");
//! * [`temporal_join_with_elements`] — all overlapping pairs where *both*
//!   descriptions contain a given element set (e.g. "co-occurring
//!   revisions that both mention 'elections'"); the element predicate is
//!   pushed down through inverted postings before the interval sweep.

use crate::collection::Collection;
use crate::postings::build_lists;
use crate::types::{ElemId, ObjectId};
use tir_hint::{forward_scan_join, IntervalRecord};

/// One join result: a pair of object ids plus the number of shared
/// description elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JoinPair {
    /// Object id from the left collection.
    pub left: ObjectId,
    /// Object id from the right collection.
    pub right: ObjectId,
    /// Number of common description elements.
    pub common: u32,
}

/// Size of the intersection of two sorted element sets.
fn common_count(a: &[ElemId], b: &[ElemId]) -> u32 {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

fn records_of(coll: &Collection) -> Vec<IntervalRecord> {
    coll.objects()
        .iter()
        .map(|o| IntervalRecord {
            id: o.id,
            st: o.interval.st,
            end: o.interval.end,
        })
        .collect()
}

/// All `(a, b)` pairs with overlapping intervals and at least
/// `min_common >= 1` shared description elements, sorted by
/// `(left, right)`.
///
/// Uses a forward-scan interval sweep with the element check applied at
/// emission time.
pub fn temporal_common_elements_join(
    a: &Collection,
    b: &Collection,
    min_common: u32,
) -> Vec<JoinPair> {
    assert!(min_common >= 1, "min_common = 0 is a plain interval join");
    let ra = records_of(a);
    let rb = records_of(b);
    let mut out = Vec::new();
    forward_scan_join(&ra, &rb, |la, rb_id| {
        let common = common_count(&a.get(la).desc, &b.get(rb_id).desc);
        if common >= min_common {
            out.push(JoinPair {
                left: la,
                right: rb_id,
                common,
            });
        }
    });
    out.sort_unstable();
    out
}

/// All overlapping `(a, b)` pairs where both descriptions contain every
/// element of `required`, sorted by `(left, right)`.
///
/// The element predicate is evaluated first through each side's postings
/// lists, so the interval sweep runs only over the qualifying objects —
/// the join-side analogue of intersecting postings before the temporal
/// check.
pub fn temporal_join_with_elements(
    a: &Collection,
    b: &Collection,
    required: &[ElemId],
) -> Vec<JoinPair> {
    if required.is_empty() {
        return Vec::new();
    }
    let filter = |coll: &Collection| -> Vec<IntervalRecord> {
        // Intersect the postings of all required elements.
        let lists = build_lists(coll.objects());
        let mut req = required.to_vec();
        req.sort_unstable();
        req.dedup();
        let mut iter = req.iter();
        // `required` is non-empty (checked above), so dedup keeps >= 1.
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let mut ids: Vec<u32> = match lists.get(first) {
            Some(l) => l.ids.clone(),
            None => return Vec::new(),
        };
        for e in iter {
            let mut next = Vec::new();
            if let Some(l) = lists.get(e) {
                tir_invidx::intersect_merge_into(&ids, &l.ids, &mut next);
            }
            ids = next;
            if ids.is_empty() {
                return Vec::new();
            }
        }
        ids.iter()
            .map(|&id| {
                let o = coll.get(id);
                IntervalRecord {
                    id,
                    st: o.interval.st,
                    end: o.interval.end,
                }
            })
            .collect()
    };
    let ra = filter(a);
    let rb = filter(b);
    let mut out = Vec::new();
    forward_scan_join(&ra, &rb, |la, rb_id| {
        let common = common_count(&a.get(la).desc, &b.get(rb_id).desc);
        out.push(JoinPair {
            left: la,
            right: rb_id,
            common,
        });
    });
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Object;

    fn coll_a() -> Collection {
        Collection::new(vec![
            Object::new(0, 0, 10, vec![1, 2, 3]),
            Object::new(1, 5, 15, vec![2, 4]),
            Object::new(2, 20, 30, vec![1, 2]),
            Object::new(3, 8, 9, vec![9]),
        ])
    }

    fn coll_b() -> Collection {
        Collection::new(vec![
            Object::new(0, 9, 12, vec![2, 3]),
            Object::new(1, 25, 40, vec![1, 7]),
            Object::new(2, 50, 60, vec![1, 2, 3]),
            Object::new(3, 0, 100, vec![9]),
        ])
    }

    fn oracle(a: &Collection, b: &Collection, min_common: u32) -> Vec<JoinPair> {
        let mut out = Vec::new();
        for oa in a.objects() {
            for ob in b.objects() {
                if oa.interval.overlaps(&ob.interval) {
                    let common = common_count(&oa.desc, &ob.desc);
                    if common >= min_common {
                        out.push(JoinPair {
                            left: oa.id,
                            right: ob.id,
                            common,
                        });
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn common_join_matches_oracle() {
        let (a, b) = (coll_a(), coll_b());
        for min_common in 1..=3 {
            assert_eq!(
                temporal_common_elements_join(&a, &b, min_common),
                oracle(&a, &b, min_common),
                "min_common={min_common}"
            );
        }
    }

    #[test]
    fn common_join_on_random_collections() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let mk = |rng: &mut StdRng, n: u32| {
            Collection::new(
                (0..n)
                    .map(|i| {
                        let st = rng.gen_range(0..500u64);
                        let len = rng.gen_range(0..60u64);
                        let desc: Vec<u32> = (0..rng.gen_range(1..5))
                            .map(|_| rng.gen_range(0..8))
                            .collect();
                        Object::new(i, st, st + len, desc)
                    })
                    .collect(),
            )
        };
        let a = mk(&mut rng, 80);
        let b = mk(&mut rng, 70);
        for min_common in 1..=2 {
            assert_eq!(
                temporal_common_elements_join(&a, &b, min_common),
                oracle(&a, &b, min_common)
            );
        }
    }

    #[test]
    fn element_constrained_join() {
        let (a, b) = (coll_a(), coll_b());
        // Pairs where both sides contain element 2.
        let got = temporal_join_with_elements(&a, &b, &[2]);
        let want: Vec<JoinPair> = oracle(&a, &b, 1)
            .into_iter()
            .filter(|p| a.get(p.left).desc.contains(&2) && b.get(p.right).desc.contains(&2))
            .collect();
        assert_eq!(got, want);
        // Element 9: only a3 × b3 overlap-wise.
        let got = temporal_join_with_elements(&a, &b, &[9]);
        assert_eq!(
            got,
            vec![JoinPair {
                left: 3,
                right: 3,
                common: 1
            }]
        );
        // Unknown element: empty.
        assert!(temporal_join_with_elements(&a, &b, &[42]).is_empty());
        assert!(temporal_join_with_elements(&a, &b, &[]).is_empty());
    }

    #[test]
    fn self_join_is_reflexive() {
        let a = coll_a();
        let got = temporal_common_elements_join(&a, &a, 1);
        for o in a.objects() {
            assert!(got.contains(&JoinPair {
                left: o.id,
                right: o.id,
                common: o.desc.len() as u32
            }));
        }
    }
}
