//! **cTIF** — a compressed temporal inverted file (extension).
//!
//! Section 7 of the paper leaves inverted-file compression as future
//! work; this index explores it: the bulk of every postings list is held
//! delta-compressed and immutable — id lists as stream-vbyte blocks with
//! uncompressed skip bounds, temporal triples as varint streams — while
//! updates go to a small uncompressed overlay (LSM-style). Queries
//! consult both sides, skipping base blocks whose bounds cannot meet the
//! candidate set and decoding the rest block-at-a-time into the scratch
//! buffer; deletes tombstone overlay entries directly and blacklist base
//! entries.

use std::collections::{HashMap, HashSet};

use crate::collection::Collection;
use crate::freq::FreqTable;
use crate::index_trait::TemporalIrIndex;
use crate::postings::TemporalList;
use crate::types::{Object, ObjectId, TimeTravelQuery};
use tir_invidx::compress::{BlockPostings, CompressedTemporalPostings};
use tir_invidx::intersect_merge_into;
use tir_invidx::planner::{Kernel, QueryScratch};

/// The compressed temporal inverted file.
#[derive(Debug, Clone, Default)]
pub struct CompressedTif {
    /// Immutable compressed lists: block-coded ids for intersections,
    /// temporal triples for the first-element filter.
    base_ids: HashMap<u32, BlockPostings>,
    base_temporal: HashMap<u32, CompressedTemporalPostings>,
    /// Dynamic uncompressed overlay.
    overlay: HashMap<u32, TemporalList>,
    /// Objects deleted from the immutable base.
    dead: HashSet<ObjectId>,
    freqs: FreqTable,
}

impl CompressedTif {
    /// Builds the compressed base from a collection.
    pub fn build(coll: &Collection) -> Self {
        let mut per_elem: HashMap<u32, (Vec<u32>, Vec<u64>, Vec<u64>)> = HashMap::new();
        for o in coll.objects() {
            for &e in &o.desc {
                let entry = per_elem.entry(e).or_default();
                entry.0.push(o.id);
                entry.1.push(o.interval.st);
                entry.2.push(o.interval.end);
            }
        }
        let mut base_ids = HashMap::with_capacity(per_elem.len());
        let mut base_temporal = HashMap::with_capacity(per_elem.len());
        for (e, (ids, sts, ends)) in per_elem {
            base_ids.insert(e, BlockPostings::encode(&ids));
            base_temporal.insert(e, CompressedTemporalPostings::encode(&ids, &sts, &ends));
        }
        CompressedTif {
            base_ids,
            base_temporal,
            overlay: HashMap::new(),
            dead: HashSet::new(),
            freqs: FreqTable::from_counts(coll.freqs()),
        }
    }

    /// Compressed-base bytes (the number the compression future-work
    /// question cares about).
    pub fn base_size_bytes(&self) -> usize {
        self.base_ids
            .values()
            .map(|c| c.size_bytes() + 16)
            .sum::<usize>()
            + self
                .base_temporal
                .values()
                .map(|c| c.size_bytes() + 16)
                .sum::<usize>()
    }
}

impl TemporalIrIndex for CompressedTif {
    fn name(&self) -> &'static str {
        "cTIF"
    }

    fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        self.query_into(q, &mut scratch, &mut out);
        out
    }

    fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<ObjectId>) {
        scratch.reset();
        self.freqs.plan_into(&q.elems, &mut scratch.plan);
        if scratch.plan.is_empty() {
            return;
        }
        let (q_st, q_end) = (q.interval.st, q.interval.end);

        // Least frequent element: temporal filter over base + overlay.
        let first = scratch.plan[0];
        let mut scanned = 0u64;
        if let Some(base) = self.base_temporal.get(&first) {
            let cands = &mut scratch.cands;
            base.for_each(|id, st, end| {
                scanned += 1;
                if st <= q_end && end >= q_st && !self.dead.contains(&id) {
                    cands.push(id);
                }
            });
        }
        if let Some(over) = self.overlay.get(&first) {
            scanned += over.seed_overlap_into(q_st, q_end, &mut scratch.cands) as u64;
        }
        scratch.note(Kernel::Merge, scanned);
        scratch.cands.sort_unstable();
        scratch.cands.dedup();

        // Remaining elements: block-at-a-time intersection against the
        // base ids, merged with the overlay hits. Blocks whose skip
        // bounds cannot meet the candidates are never decoded; decoded
        // blocks land in the scratch decode buffer and go through the
        // dispatched merge kernel.
        let mut hits = scratch.take_aux();
        let mut blk = scratch.take_blk();
        for pi in 1..scratch.plan.len() {
            if scratch.cands.is_empty() {
                break;
            }
            let e = scratch.plan[pi];
            hits.clear();
            if let Some(base) = self.base_ids.get(&e) {
                let st = base.intersect_into(&scratch.cands, &mut hits, &mut blk);
                hits.retain(|id| !self.dead.contains(id));
                let k = if st.vector {
                    Kernel::SimdMerge
                } else {
                    Kernel::Merge
                };
                scratch.note(k, st.scanned);
                scratch.note_blocks(st.blocks_decoded);
            }
            if let Some(over) = self.overlay.get(&e) {
                intersect_merge_into(&scratch.cands, &over.ids, &mut hits);
                scratch.note(Kernel::Merge, (scratch.cands.len() + over.ids.len()) as u64);
            }
            hits.sort_unstable();
            hits.dedup();
            std::mem::swap(&mut scratch.cands, &mut hits);
        }
        scratch.put_blk(blk);
        scratch.put_aux(hits);
        scratch.take_into(out);
    }

    fn insert(&mut self, o: &Object) {
        for &e in &o.desc {
            self.overlay
                .entry(e)
                .or_default()
                .insert(o.id, o.interval.st, o.interval.end);
            self.freqs.bump(e);
        }
    }

    fn delete(&mut self, o: &Object) -> bool {
        // Overlay first; if absent there, blacklist the base entry.
        let mut any = false;
        let mut in_overlay = false;
        for &e in &o.desc {
            if let Some(list) = self.overlay.get_mut(&e) {
                if list.tombstone(o.id) {
                    in_overlay = true;
                    any = true;
                    self.freqs.drop_one(e);
                }
            }
        }
        if !in_overlay {
            let in_base = self
                .base_ids
                .get(o.desc.first().unwrap_or(&u32::MAX))
                .map(|c| c.contains(o.id))
                .unwrap_or(false);
            if in_base && self.dead.insert(o.id) {
                for &e in &o.desc {
                    self.freqs.drop_one(e);
                }
                any = true;
            }
        }
        any
    }

    fn size_bytes(&self) -> usize {
        self.base_size_bytes()
            + self
                .overlay
                .values()
                .map(|l| l.size_bytes() + std::mem::size_of::<TemporalList>() + 16)
                .sum::<usize>()
            + self.dead.len() * 8
            + self.freqs.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BruteForce;
    use crate::tif::Tif;

    #[test]
    fn running_example() {
        let coll = Collection::running_example();
        let idx = CompressedTif::build(&coll);
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let mut got = idx.query(&q);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 6]);
    }

    #[test]
    fn matches_oracle_on_example_grid() {
        let coll = Collection::running_example();
        let idx = CompressedTif::build(&coll);
        let bf = BruteForce::build(coll.objects());
        for st in 0..16u64 {
            for end in st..16 {
                for elems in [vec![0], vec![2], vec![0, 2], vec![0, 1, 2]] {
                    let q = TimeTravelQuery::new(st, end, elems);
                    let mut got = idx.query(&q);
                    got.sort_unstable();
                    assert_eq!(got, bf.answer(&q), "q={q:?}");
                }
            }
        }
    }

    #[test]
    fn compressed_base_is_smaller_than_plain_tif() {
        // Dense sequential ids compress well: this is the point.
        let objects: Vec<Object> = (0..5000u32)
            .map(|i| {
                Object::new(
                    i,
                    (i as u64) * 3,
                    (i as u64) * 3 + 50,
                    vec![i % 5, 5 + i % 7],
                )
            })
            .collect();
        let coll = Collection::new(objects);
        let plain = Tif::build(&coll);
        let compressed = CompressedTif::build(&coll);
        assert!(
            compressed.size_bytes() < plain.size_bytes() / 2,
            "compressed {} vs plain {}",
            compressed.size_bytes(),
            plain.size_bytes()
        );
    }

    #[test]
    fn overlay_updates_match_oracle() {
        let coll = Collection::running_example();
        let mut idx = CompressedTif::build(&coll);
        let mut bf = BruteForce::build(coll.objects());
        // Insert into the overlay.
        let o = Object::new(8, 4, 11, vec![0, 2]);
        idx.insert(&o);
        bf.insert(&o);
        // Delete one base object and the overlay object.
        assert!(idx.delete(coll.get(3)));
        bf.delete(coll.get(3));
        assert!(!idx.delete(coll.get(3)), "idempotent");
        assert!(idx.delete(&o));
        bf.delete(&o);
        for st in 0..16u64 {
            for elems in [vec![0, 2], vec![2]] {
                let q = TimeTravelQuery::new(st, st + 4, elems);
                let mut got = idx.query(&q);
                got.sort_unstable();
                assert_eq!(got, bf.answer(&q), "q={q:?}");
            }
        }
    }

    #[test]
    fn delete_unknown_object_is_false() {
        let coll = Collection::running_example();
        let mut idx = CompressedTif::build(&coll);
        assert!(!idx.delete(&Object::new(77, 0, 5, vec![0])));
    }
}
