//! # tir-core
//!
//! Indexes for **time-travel IR queries** (Rauch & Bouros, "Fast Indexing
//! for Temporal Information Retrieval"): given a query interval and a set
//! of descriptive elements, retrieve every object whose lifespan overlaps
//! the interval and whose description contains all elements.
//!
//! ## Index implementations
//!
//! | Type | Approach | Paper section |
//! |------|----------|---------------|
//! | [`Tif`] | base temporal inverted file | §2.2, Alg. 1 |
//! | [`TifSlicing`] | vertical time-slice partitioning | §2.2 |
//! | [`TifSharding`] | staircase shards + impact lists | §2.2 |
//! | [`TifHint`] (binary-search) | per-element HINTs, Alg. 3 | §3.1 |
//! | [`TifHint`] (merge-sort) | id-sorted per-element HINTs, Alg. 4 | §3.1 |
//! | [`TifHintSlicing`] | dual-copy hybrid | §3.2 |
//! | [`IrHintPerf`] | time-first, tIF per division | §4.1, Alg. 5 |
//! | [`IrHintSize`] | time-first, decoupled dual structure | §4.2, Alg. 6 |
//!
//! Extensions beyond the paper: [`CompressedTif`] explores the
//! compression future-work direction (delta/varint base + uncompressed
//! overlay), and [`ranked`] adds relevance-ranked top-k retrieval.
//!
//! All indexes implement [`TemporalIrIndex`] and agree exactly with the
//! [`BruteForce`] oracle.
//!
//! ```
//! use tir_core::prelude::*;
//!
//! let coll = Collection::running_example();
//! let index = IrHintPerf::build(&coll);
//! let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
//! let mut hits = index.query(&q);
//! hits.sort_unstable();
//! assert_eq!(hits, vec![1, 3, 6]); // objects o2, o4, o7 of Figure 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod compressed_tif;
pub mod freq;
pub mod hybrid;
pub mod index_trait;
pub mod irhint_perf;
pub mod irhint_size;
pub mod joins;
pub mod oracle;
pub mod postings;
pub mod ranked;
pub mod sharding;
pub mod slicing;
pub mod tif;
pub mod tif_hint;
pub mod types;

pub use collection::{Collection, CollectionStats};
pub use compressed_tif::CompressedTif;
pub use hybrid::TifHintSlicing;
pub use index_trait::{delete_batch, insert_batch, SharedIndex, TemporalIrIndex};
pub use irhint_perf::IrHintPerf;
pub use irhint_size::IrHintSize;
pub use joins::{temporal_common_elements_join, temporal_join_with_elements, JoinPair};
pub use oracle::BruteForce;
pub use ranked::{RankedQuery, RankedTif, ScoredHit};
pub use sharding::{ShardView, ShardingConfig, TifSharding, IMPACT_STRIDE};
pub use slicing::{tune_num_slices, TifSlicing};
pub use tif::Tif;
pub use tif_hint::{IntersectStrategy, TifHint, TifHintConfig};
pub use tir_invidx::{Kernel, PlanStats, QueryScratch};
pub use types::{ElemId, Interval, Object, ObjectId, TimeTravelQuery, Timestamp};

/// Commonly used items, star-importable.
pub mod prelude {
    pub use crate::collection::{Collection, CollectionStats};
    pub use crate::compressed_tif::CompressedTif;
    pub use crate::hybrid::TifHintSlicing;
    pub use crate::index_trait::{delete_batch, insert_batch, SharedIndex, TemporalIrIndex};
    pub use crate::irhint_perf::IrHintPerf;
    pub use crate::irhint_size::IrHintSize;
    pub use crate::oracle::BruteForce;
    pub use crate::ranked::{RankedQuery, RankedTif, ScoredHit};
    pub use crate::sharding::TifSharding;
    pub use crate::slicing::TifSlicing;
    pub use crate::tif::Tif;
    pub use crate::tif_hint::{IntersectStrategy, TifHint, TifHintConfig};
    pub use crate::types::{ElemId, Interval, Object, ObjectId, TimeTravelQuery, Timestamp};
    pub use tir_invidx::{Kernel, PlanStats, QueryScratch};
}
