//! Object collections: the indexed corpus, its global dictionary
//! statistics, and shape statistics matching Table 3 of the paper.

use crate::types::{ElemId, Interval, Object, ObjectId, Timestamp};

/// An immutable collection of objects with ids `0..len`, plus the element
/// frequency table of the global dictionary.
///
/// The `id == position` invariant keeps oracle checks and update workloads
/// O(1); generators produce ids in that form.
#[derive(Debug, Clone)]
pub struct Collection {
    objects: Vec<Object>,
    domain_min: Timestamp,
    domain_max: Timestamp,
    freqs: Vec<u32>,
}

impl Collection {
    /// Wraps objects (ids must equal their position) into a collection,
    /// computing the domain span and element frequencies.
    pub fn new(objects: Vec<Object>) -> Self {
        Self::with_domain_hint(objects, Timestamp::MAX, 0)
    }

    /// As [`Collection::new`] but guaranteeing that the domain covers at
    /// least `[min_hint, max_hint]` (useful when later inserts may extend
    /// past the initially indexed span).
    pub fn with_domain_hint(
        objects: Vec<Object>,
        min_hint: Timestamp,
        max_hint: Timestamp,
    ) -> Self {
        let mut domain_min = min_hint;
        let mut domain_max = max_hint;
        let mut max_elem = 0u32;
        for (i, o) in objects.iter().enumerate() {
            assert_eq!(o.id as usize, i, "object ids must equal their position");
            domain_min = domain_min.min(o.interval.st);
            domain_max = domain_max.max(o.interval.end);
            if let Some(&e) = o.desc.last() {
                max_elem = max_elem.max(e);
            }
        }
        if objects.is_empty() && domain_min > domain_max {
            domain_min = 0;
            domain_max = 0;
        }
        let mut freqs = vec![0u32; max_elem as usize + 1];
        for o in &objects {
            for &e in &o.desc {
                freqs[e as usize] += 1;
            }
        }
        Collection {
            objects,
            domain_min,
            domain_max,
            freqs,
        }
    }

    /// The objects, ordered by id.
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// Object by id.
    pub fn get(&self, id: ObjectId) -> &Object {
        &self.objects[id as usize]
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the collection has no object.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Raw domain `[min, max]` covered by the collection.
    pub fn domain(&self) -> Interval {
        Interval::new(self.domain_min, self.domain_max)
    }

    /// Document frequency of an element (0 for unknown ids).
    pub fn freq(&self, e: ElemId) -> u32 {
        self.freqs.get(e as usize).copied().unwrap_or(0)
    }

    /// The full frequency table (indexed by element id).
    pub fn freqs(&self) -> &[u32] {
        &self.freqs
    }

    /// Number of dictionary slots (max element id + 1).
    pub fn dict_size(&self) -> usize {
        self.freqs.len()
    }

    /// Splits off the last `fraction` of objects (by id) for update
    /// experiments: returns `(offline, batch)` collections where `offline`
    /// keeps the domain of the full collection.
    pub fn split_for_updates(&self, fraction: f64) -> (Collection, Vec<Object>) {
        assert!((0.0..1.0).contains(&fraction));
        let keep = ((self.len() as f64) * (1.0 - fraction)).round() as usize;
        let offline: Vec<Object> = self.objects[..keep].to_vec();
        let batch: Vec<Object> = self.objects[keep..].to_vec();
        (
            Collection::with_domain_hint(offline, self.domain_min, self.domain_max),
            batch,
        )
    }

    /// Shape statistics in the spirit of Table 3 of the paper.
    pub fn stats(&self) -> CollectionStats {
        let n = self.len().max(1) as f64;
        let mut dur_sum = 0u128;
        let mut dur_min = u64::MAX;
        let mut dur_max = 0u64;
        let mut desc_sum = 0usize;
        let mut desc_min = usize::MAX;
        let mut desc_max = 0usize;
        for o in &self.objects {
            let d = o.interval.duration();
            dur_sum += d as u128;
            dur_min = dur_min.min(d);
            dur_max = dur_max.max(d);
            let s = o.desc.len();
            desc_sum += s;
            desc_min = desc_min.min(s);
            desc_max = desc_max.max(s);
        }
        let distinct = self.freqs.iter().filter(|&&f| f > 0).count();
        let freq_sum: u64 = self.freqs.iter().map(|&f| f as u64).sum();
        let domain_span = self.domain_max - self.domain_min + 1;
        CollectionStats {
            cardinality: self.len(),
            domain_span,
            min_duration: if self.is_empty() { 0 } else { dur_min },
            max_duration: dur_max,
            avg_duration: dur_sum as f64 / n,
            avg_duration_pct: 100.0 * (dur_sum as f64 / n) / domain_span as f64,
            dictionary_size: distinct,
            min_desc: if self.is_empty() { 0 } else { desc_min },
            max_desc: desc_max,
            avg_desc: desc_sum as f64 / n,
            avg_elem_freq: freq_sum as f64 / distinct.max(1) as f64,
            avg_elem_freq_pct: 100.0 * (freq_sum as f64 / distinct.max(1) as f64) / n,
        }
    }

    /// The running example of Figure 1: eight objects over dictionary
    /// `{a=0, b=1, c=2}`. The canonical query (shaded area, `q.d = {a,c}`)
    /// is `TimeTravelQuery::new(5, 9, vec![0, 2])`, whose answer is
    /// objects o2, o4 and o7 — ids 1, 3 and 6 here (o\_k has id k-1).
    pub fn running_example() -> Collection {
        const A: ElemId = 0;
        const B: ElemId = 1;
        const C: ElemId = 2;
        Collection::new(vec![
            Object::new(0, 11, 15, vec![A, B, C]), // o1: outside query time
            Object::new(1, 2, 6, vec![A, C]),      // o2: answer
            Object::new(2, 3, 8, vec![B]),         // o3: missing a, c
            Object::new(3, 0, 14, vec![A, B, C]),  // o4: answer
            Object::new(4, 4, 7, vec![B, C]),      // o5: missing a
            Object::new(5, 3, 11, vec![C]),        // o6: missing a
            Object::new(6, 6, 13, vec![A, C]),     // o7: answer
            Object::new(7, 8, 9, vec![C]),         // o8: missing a
        ])
    }
}

/// Shape statistics of a collection (cf. Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionStats {
    /// Number of objects.
    pub cardinality: usize,
    /// Domain span in raw units.
    pub domain_span: u64,
    /// Minimum interval duration.
    pub min_duration: u64,
    /// Maximum interval duration.
    pub max_duration: u64,
    /// Average interval duration.
    pub avg_duration: f64,
    /// Average duration as % of the domain.
    pub avg_duration_pct: f64,
    /// Distinct elements actually used.
    pub dictionary_size: usize,
    /// Minimum description size.
    pub min_desc: usize,
    /// Maximum description size.
    pub max_desc: usize,
    /// Average description size.
    pub avg_desc: f64,
    /// Average element document frequency.
    pub avg_elem_freq: f64,
    /// Average element frequency as % of cardinality.
    pub avg_elem_freq_pct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TimeTravelQuery;

    #[test]
    fn running_example_query_answer() {
        let coll = Collection::running_example();
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let got: Vec<ObjectId> = coll
            .objects()
            .iter()
            .filter(|o| q.matches(o))
            .map(|o| o.id)
            .collect();
        assert_eq!(got, vec![1, 3, 6], "o2, o4, o7");
    }

    #[test]
    fn frequencies_match_figure1() {
        let coll = Collection::running_example();
        assert_eq!(coll.freq(0), 4, "a appears in o1, o2, o4, o7");
        assert_eq!(coll.freq(1), 4, "b appears in o1, o3, o4, o5");
        assert_eq!(coll.freq(2), 7, "c appears in all but o3");
        assert!(coll.freq(0) < coll.freq(2), "a is less frequent than c");
    }

    #[test]
    fn stats_plausible() {
        let coll = Collection::running_example();
        let s = coll.stats();
        assert_eq!(s.cardinality, 8);
        assert_eq!(s.dictionary_size, 3);
        assert_eq!(s.domain_span, 16);
        assert!(s.avg_desc > 1.0 && s.avg_desc < 3.0);
        assert_eq!(s.max_duration, 15);
    }

    #[test]
    fn split_for_updates() {
        let coll = Collection::running_example();
        let (offline, batch) = coll.split_for_updates(0.25);
        assert_eq!(offline.len(), 6);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].id, 6);
        // Domain hint preserved even though late objects were removed.
        assert_eq!(offline.domain(), coll.domain());
    }

    #[test]
    #[should_panic]
    fn rejects_misnumbered_ids() {
        let _ = Collection::new(vec![Object::new(5, 0, 1, vec![0])]);
    }
}
