//! Relevance-ranked temporal retrieval (extension).
//!
//! The paper restricts itself to boolean containment and names
//! relevance-based temporal IR as future work (Sections 1 and 7). This
//! module provides a reference implementation: *top-k* retrieval where an
//! object may match only part of `q.d`, scored by IDF-weighted element
//! coverage scaled by the temporal overlap fraction:
//!
//! ```text
//! score(o, q) = (Σ_{e ∈ q.d ∩ o.d} idf(e)) / (Σ_{e ∈ q.d} idf(e))
//!               · |[o.tst,o.tend] ∩ [q.tst,q.tend]| / |[q.tst,q.tend]|
//! idf(e) = ln(1 + N / freq(e))
//! ```
//!
//! Scores lie in `(0, 1]`; objects with no overlapping interval or no
//! common element score 0 and are never returned.

use std::collections::HashMap;

use crate::collection::Collection;
use crate::freq::FreqTable;
use crate::postings::{build_lists, TemporalList};
use crate::types::{ElemId, Interval, ObjectId, Timestamp};
use tir_invidx::live;

/// A ranked query: interval, elements, and how many results to return.
#[derive(Debug, Clone)]
pub struct RankedQuery {
    /// Time interval of interest.
    pub interval: Interval,
    /// Query elements (partial matches allowed, unlike boolean search).
    pub elems: Vec<ElemId>,
    /// Number of results.
    pub k: usize,
}

impl RankedQuery {
    /// Creates a ranked query.
    pub fn new(st: Timestamp, end: Timestamp, mut elems: Vec<ElemId>, k: usize) -> Self {
        elems.sort_unstable();
        elems.dedup();
        RankedQuery {
            interval: Interval::new(st, end),
            elems,
            k,
        }
    }
}

/// One scored result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredHit {
    /// Object id.
    pub id: ObjectId,
    /// Relevance in `(0, 1]`.
    pub score: f64,
}

/// Inverted-file evaluator for ranked temporal queries.
#[derive(Debug, Clone, Default)]
pub struct RankedTif {
    lists: HashMap<u32, TemporalList>,
    freqs: FreqTable,
    n: usize,
}

impl RankedTif {
    /// Builds the evaluator over a collection.
    pub fn build(coll: &Collection) -> Self {
        RankedTif {
            lists: build_lists(coll.objects()),
            freqs: FreqTable::from_counts(coll.freqs()),
            n: coll.len(),
        }
    }

    fn idf(&self, e: ElemId) -> f64 {
        let f = self.freqs.get(e).max(1) as f64;
        (1.0 + self.n as f64 / f).ln()
    }

    /// Top-k results ordered by descending score (ties broken by
    /// ascending id, deterministically).
    pub fn query_topk(&self, q: &RankedQuery) -> Vec<ScoredHit> {
        if q.k == 0 || q.elems.is_empty() {
            return Vec::new();
        }
        let total_idf: f64 = q.elems.iter().map(|&e| self.idf(e)).sum();
        if total_idf <= 0.0 {
            return Vec::new();
        }
        let (q_st, q_end) = (q.interval.st, q.interval.end);
        let q_len = q.interval.duration() as f64;

        // Accumulate IDF mass and remember the overlap factor per object.
        let mut acc: HashMap<ObjectId, (f64, f64)> = HashMap::new();
        for &e in &q.elems {
            let Some(list) = self.lists.get(&e) else {
                continue;
            };
            let w = self.idf(e);
            for i in 0..list.ids.len() {
                if !live(list.ids[i]) {
                    continue;
                }
                let (st, end) = (list.sts[i], list.ends[i]);
                if st > q_end || end < q_st {
                    continue;
                }
                let overlap = (end.min(q_end) - st.max(q_st) + 1) as f64;
                let entry = acc.entry(list.ids[i]).or_insert((0.0, 0.0));
                entry.0 += w;
                entry.1 = overlap / q_len;
            }
        }

        let mut hits: Vec<ScoredHit> = acc
            .into_iter()
            .map(|(id, (mass, tfrac))| ScoredHit {
                id,
                score: (mass / total_idf) * tfrac,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        hits.truncate(q.k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coll() -> Collection {
        Collection::running_example()
    }

    #[test]
    fn full_matches_outrank_partial_matches() {
        let r = RankedTif::build(&coll());
        // q.d = {a, c}: o2/o4/o7 contain both, o6/o8 only c.
        let hits = r.query_topk(&RankedQuery::new(5, 9, vec![0, 2], 10));
        let ids: Vec<ObjectId> = hits.iter().map(|h| h.id).collect();
        assert!(
            ids.contains(&5) || ids.contains(&7),
            "partial matches included"
        );
        let pos = |id: ObjectId| ids.iter().position(|&x| x == id);
        for full in [1u32, 3, 6] {
            for partial in [5u32, 7] {
                // Both o6(id 5) and o8(id 7) fully overlap? o8 = [8,9]
                // overlaps [5,9] by 2/5 only, o6 = [3,11] fully covers.
                // Full-element matches with full overlap must dominate
                // c-only matches.
                if let (Some(a), Some(b)) = (pos(full), pos(partial)) {
                    if full == 3 || full == 6 || full == 1 {
                        // o2=[2,6] covers 2/5 of the query... compare only
                        // o4 (id 3, covers all) against partials.
                        if full == 3 {
                            assert!(a < b, "o4 must outrank partial {partial}");
                        }
                    }
                    let _ = (a, b);
                }
            }
        }
        // Scores are within (0, 1].
        for h in &hits {
            assert!(h.score > 0.0 && h.score <= 1.0 + 1e-9, "{h:?}");
        }
        // o4 ([0,14] ⊇ query, both elements) must be the top hit.
        assert_eq!(hits[0].id, 3);
    }

    #[test]
    fn temporal_overlap_scales_score() {
        let r = RankedTif::build(&coll());
        // o8 = [8, 9], c only. A query window covering it fully vs barely.
        let full = r.query_topk(&RankedQuery::new(8, 9, vec![2], 10));
        let barely = r.query_topk(&RankedQuery::new(0, 9, vec![2], 10));
        let score_of =
            |hits: &[ScoredHit], id: ObjectId| hits.iter().find(|h| h.id == id).map(|h| h.score);
        let s_full = score_of(&full, 7).unwrap();
        let s_barely = score_of(&barely, 7).unwrap();
        assert!(s_full > s_barely, "{s_full} vs {s_barely}");
        assert!((s_full - 1.0).abs() < 1e-9, "perfect match scores 1.0");
    }

    #[test]
    fn k_truncates_and_orders() {
        let r = RankedTif::build(&coll());
        let all = r.query_topk(&RankedQuery::new(0, 15, vec![2], 100));
        let top2 = r.query_topk(&RankedQuery::new(0, 15, vec![2], 2));
        assert_eq!(all.len(), 7, "every c-object overlaps the full window");
        assert_eq!(top2.len(), 2);
        assert_eq!(all[..2], top2[..]);
        assert!(all.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn empty_cases() {
        let r = RankedTif::build(&coll());
        assert!(r.query_topk(&RankedQuery::new(0, 15, vec![], 5)).is_empty());
        assert!(r
            .query_topk(&RankedQuery::new(0, 15, vec![2], 0))
            .is_empty());
        assert!(r
            .query_topk(&RankedQuery::new(0, 15, vec![99], 5))
            .is_empty());
    }

    #[test]
    fn idf_prefers_rare_elements() {
        let r = RankedTif::build(&coll());
        // a (freq 4) is rarer than c (freq 7): an a-only match must beat
        // a c-only match with identical temporal overlap. o3={b} excluded;
        // compare o5={b,c} vs... all a-objects also have c. Synthetic:
        let coll = Collection::new(vec![
            Object::new(0, 0, 9, vec![0]), // rare element only
            Object::new(1, 0, 9, vec![1]), // common element only
            Object::new(2, 0, 9, vec![1]),
            Object::new(3, 0, 9, vec![1]),
        ]);
        let r2 = RankedTif::build(&coll);
        let hits = r2.query_topk(&RankedQuery::new(0, 9, vec![0, 1], 4));
        assert_eq!(hits[0].id, 0, "rare-element match ranks first");
        let _ = r;
    }

    use crate::types::Object;
}
