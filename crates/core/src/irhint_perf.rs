//! **irHINT, performance variant** (Section 4.1): a single HINT hierarchy
//! over the whole collection where every division stores a *temporal
//! inverted file* of its objects. Queries traverse the hierarchy bottom-up
//! and run a condition-specialized `QueryTemporalIF` in each relevant
//! division; HINT's duplicate avoidance makes the per-division outputs
//! disjoint.

use std::collections::HashMap;

use crate::collection::Collection;
use crate::freq::FreqTable;
use crate::index_trait::TemporalIrIndex;
use crate::types::{ElemId, Object, ObjectId, TimeTravelQuery, Timestamp};
use tir_hint::layout::refine_mode;
use tir_hint::{CheckMode, DivisionKind, Domain, Layout};
use tir_invidx::planner::{Kernel, Postings, QueryScratch};
use tir_invidx::{live, CompactTemporalInverted};

const KINDS: [DivisionKind; 4] = [
    DivisionKind::OrigIn,
    DivisionKind::OrigAft,
    DivisionKind::ReplIn,
    DivisionKind::ReplAft,
];

#[inline]
fn kidx(kind: DivisionKind) -> usize {
    match kind {
        DivisionKind::OrigIn => 0,
        DivisionKind::OrigAft => 1,
        DivisionKind::ReplIn => 2,
        DivisionKind::ReplAft => 3,
    }
}

/// Per-partition payload: one temporal inverted file per subdivision.
#[derive(Debug, Clone, Default)]
struct PartTifs {
    divs: [CompactTemporalInverted; 4],
}

impl PartTifs {
    fn size_bytes(&self) -> usize {
        self.divs
            .iter()
            .map(CompactTemporalInverted::size_bytes)
            .sum()
    }
}

#[derive(Debug, Clone, Default)]
struct Level {
    keys: Vec<u32>,
    parts: Vec<PartTifs>,
}

impl Level {
    fn get_or_insert(&mut self, j: u32) -> &mut PartTifs {
        match self.keys.binary_search(&j) {
            Ok(i) => &mut self.parts[i],
            Err(i) => {
                self.keys.insert(i, j);
                self.parts.insert(i, PartTifs::default());
                &mut self.parts[i]
            }
        }
    }
}

/// The performance-focused irHINT index.
#[derive(Debug, Clone)]
pub struct IrHintPerf {
    domain: Domain,
    layout: Layout,
    levels: Vec<Level>,
    freqs: FreqTable,
}

impl IrHintPerf {
    /// Builds with `m` chosen by the IR-aware cost heuristic
    /// [`crate::irhint_size::choose_m_ir`].
    ///
    /// The interval-only HINT cost model over-partitions composite
    /// indexes: it prices a relevant partition at one entry touch, but an
    /// irHINT division costs `|q.d|` directory probes while its
    /// first-element postings are already `freq(e*)/n` shorter than the
    /// division. The heuristic therefore targets a fixed number of objects
    /// per bottom partition (large for this variant, whose per-division
    /// probe is priciest).
    pub fn build(coll: &Collection) -> Self {
        Self::build_with_m(coll, crate::irhint_size::choose_m_ir(coll.len(), 2048))
    }

    /// Builds with an explicit number of levels.
    pub fn build_with_m(coll: &Collection, m: u32) -> Self {
        let d = coll.domain();
        let domain = Domain::new(d.st, d.end, m);
        let layout = Layout::new(m);

        // Buffer the division contents, then bulk-build each tIF.
        let mut buffers: HashMap<(u32, u32, usize), Vec<(u32, u32, u64, u64)>> = HashMap::new();
        for o in coll.objects() {
            let a = domain.cell(o.interval.st);
            let b = domain.cell(o.interval.end);
            layout.assign(a, b, |level, j, original| {
                let ends_inside = b <= domain.partition_last_cell(level, j);
                let kind = kind_of(original, ends_inside);
                let buf = buffers.entry((level, j, kidx(kind))).or_default();
                for &e in &o.desc {
                    buf.push((e, o.id, o.interval.st, o.interval.end));
                }
            });
        }
        let mut levels: Vec<Level> = (0..=m).map(|_| Level::default()).collect();
        let mut entries: Vec<((u32, u32, usize), Vec<(u32, u32, u64, u64)>)> =
            buffers.into_iter().collect();
        entries.sort_unstable_by_key(|&(key, _)| key);
        for ((level, j, k), mut buf) in entries {
            let part = levels[level as usize].get_or_insert(j);
            part.divs[k] = CompactTemporalInverted::build(&mut buf);
        }
        IrHintPerf {
            domain,
            layout,
            levels,
            freqs: FreqTable::from_counts(coll.freqs()),
        }
    }

    /// The number of levels minus one.
    pub fn m(&self) -> u32 {
        self.layout.m()
    }

    /// Total stored postings over all division tIFs (replication included).
    pub fn num_postings(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.parts.iter())
            .flat_map(|p| p.divs.iter())
            .map(CompactTemporalInverted::num_postings)
            .sum()
    }

    /// Document frequency of an element as tracked by the planner.
    pub fn freq(&self, e: u32) -> u32 {
        self.freqs.get(e)
    }

    /// The discretized domain of the hierarchy.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Calls `f(level, j, kind, division tIF)` for every materialized
    /// division, in `(level, j, kind)` order (introspection for
    /// validators).
    pub fn for_each_division(
        &self,
        mut f: impl FnMut(u32, u32, DivisionKind, &CompactTemporalInverted),
    ) {
        for (li, lvl) in self.levels.iter().enumerate() {
            for (pi, &j) in lvl.keys.iter().enumerate() {
                for kind in KINDS {
                    // analyze:allow(unguarded-cast): level index is bounded by m <= 20
                    f(li as u32, j, kind, &lvl.parts[pi].divs[kidx(kind)]);
                }
            }
        }
    }

    /// Deliberately breaks the parallel-array invariant of the first
    /// non-empty division — used by `tir-check`'s property tests to prove
    /// the validator notices.
    #[cfg(feature = "testing")]
    pub fn testing_corrupt(&mut self) {
        for lvl in &mut self.levels {
            for part in &mut lvl.parts {
                for div in &mut part.divs {
                    if !div.is_empty() {
                        div.testing_corrupt_parallel();
                        return;
                    }
                }
            }
        }
    }

    /// `QueryTemporalIF` (Algorithm 5): Algorithm 1 on one division's tIF
    /// with the temporal comparisons reduced to `mode`.
    fn query_temporal_if(
        &self,
        div: &CompactTemporalInverted,
        plan: &[ElemId],
        mode: CheckMode,
        q_st: Timestamp,
        q_end: Timestamp,
        scratch: &mut QueryScratch,
        out: &mut Vec<ObjectId>,
    ) {
        // An empty plan answers nothing; returning beats panicking a
        // serving thread if a caller ever stops pre-checking.
        let Some((&first, rest)) = plan.split_first() else {
            return;
        };
        let p = div.postings(first);
        if p.is_empty() {
            return;
        }
        scratch.cands.clear();
        for i in 0..p.ids.len() {
            if !live(p.ids[i]) {
                continue;
            }
            let ok = match mode {
                CheckMode::None => true,
                CheckMode::Start => p.sts[i] <= q_end,
                CheckMode::End => p.ends[i] >= q_st,
                CheckMode::Both => p.sts[i] <= q_end && p.ends[i] >= q_st,
            };
            if ok {
                scratch.cands.push(p.ids[i]);
            }
        }
        scratch.note(Kernel::Merge, p.ids.len() as u64);
        for &e in rest {
            if scratch.cands.is_empty() {
                return;
            }
            scratch.intersect(Postings::Ids(div.postings(e).ids));
        }
        out.append(&mut scratch.cands);
    }
}

#[inline]
fn kind_of(original: bool, ends_inside: bool) -> DivisionKind {
    match (original, ends_inside) {
        (true, true) => DivisionKind::OrigIn,
        (true, false) => DivisionKind::OrigAft,
        (false, true) => DivisionKind::ReplIn,
        (false, false) => DivisionKind::ReplAft,
    }
}

impl TemporalIrIndex for IrHintPerf {
    fn name(&self) -> &'static str {
        "irHINT(perf)"
    }

    fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        self.query_into(q, &mut scratch, &mut out);
        out
    }

    fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<ObjectId>) {
        scratch.reset();
        self.freqs.plan_into(&q.elems, &mut scratch.plan);
        if scratch.plan.is_empty() {
            return;
        }
        // The plan is borrowed across the division visits while the
        // scratch is mutated, so move it out and restore it after.
        let plan = std::mem::take(&mut scratch.plan);
        let (q_st, q_end) = (q.interval.st, q.interval.end);
        let qa = self.domain.cell(q_st);
        let qb = self.domain.cell(q_end);
        self.layout
            .for_each_relevant_level(qa, qb, |level, f, l, fc, lc, mc| {
                let lvl = &self.levels[level as usize];
                let lo = lvl.keys.partition_point(|&k| k < f);
                for i in lo..lvl.keys.len() {
                    let j = lvl.keys[i];
                    if j > l {
                        break;
                    }
                    let checks = if j == f {
                        fc
                    } else if j == l {
                        lc
                    } else {
                        mc
                    };
                    let part = &lvl.parts[i];
                    for kind in KINDS {
                        let is_repl = matches!(kind, DivisionKind::ReplIn | DivisionKind::ReplAft);
                        let mode = if is_repl {
                            match checks.replicas {
                                Some(rm) => refine_mode(rm, kind),
                                None => continue,
                            }
                        } else {
                            refine_mode(checks.originals, kind)
                        };
                        let div = &part.divs[kidx(kind)];
                        if !div.is_empty() {
                            self.query_temporal_if(div, &plan, mode, q_st, q_end, scratch, out);
                        }
                    }
                }
            });
        scratch.plan = plan;
        scratch.take_into(out);
    }

    fn insert(&mut self, o: &Object) {
        let a = self.domain.cell(o.interval.st);
        let b = self.domain.cell(o.interval.end);
        let domain = self.domain;
        let levels = &mut self.levels;
        let desc = &o.desc;
        self.layout.assign(a, b, |level, j, original| {
            let ends_inside = b <= domain.partition_last_cell(level, j);
            let kind = kind_of(original, ends_inside);
            let part = levels[level as usize].get_or_insert(j);
            let div = &mut part.divs[kidx(kind)];
            for &e in desc {
                div.insert(e, o.id, o.interval.st, o.interval.end);
            }
        });
        for &e in desc {
            self.freqs.bump(e);
        }
    }

    fn delete(&mut self, o: &Object) -> bool {
        let a = self.domain.cell(o.interval.st);
        let b = self.domain.cell(o.interval.end);
        let domain = self.domain;
        let levels = &mut self.levels;
        let mut any = false;
        self.layout.assign(a, b, |level, j, original| {
            let ends_inside = b <= domain.partition_last_cell(level, j);
            let kind = kind_of(original, ends_inside);
            let lvl = &mut levels[level as usize];
            if let Ok(i) = lvl.keys.binary_search(&j) {
                let div = &mut lvl.parts[i].divs[kidx(kind)];
                for &e in &o.desc {
                    if div.tombstone(e, o.id) && original {
                        any = true;
                    }
                }
            }
        });
        if any {
            for &e in &o.desc {
                self.freqs.drop_one(e);
            }
        }
        any
    }

    fn size_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                l.keys.capacity() * 4
                    + l.parts.iter().map(PartTifs::size_bytes).sum::<usize>()
                    + l.parts.capacity() * std::mem::size_of::<PartTifs>()
            })
            .sum::<usize>()
            + self.freqs.size_bytes()
    }

    fn insert_batch(&mut self, batch: &[Object]) {
        // Group the whole batch per division, then merge-rebuild each
        // touched division once.
        let domain = self.domain;
        let layout = self.layout;
        let mut buffers: HashMap<(u32, u32, usize), Vec<(u32, u32, u64, u64)>> = HashMap::new();
        for o in batch {
            let a = domain.cell(o.interval.st);
            let b = domain.cell(o.interval.end);
            layout.assign(a, b, |level, j, original| {
                let ends_inside = b <= domain.partition_last_cell(level, j);
                let kind = kind_of(original, ends_inside);
                let buf = buffers.entry((level, j, kidx(kind))).or_default();
                for &e in &o.desc {
                    buf.push((e, o.id, o.interval.st, o.interval.end));
                }
            });
            for &e in &o.desc {
                self.freqs.bump(e);
            }
        }
        for ((level, j, k), mut buf) in buffers {
            let part = self.levels[level as usize].get_or_insert(j);
            part.divs[k].merge_in(&mut buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BruteForce;

    #[test]
    fn running_example_matches_table2_layout() {
        // With m = 3, the running example produces the divisions of
        // Figure 6 / Table 2; the query answer must be o2, o4, o7.
        let coll = Collection::running_example();
        let idx = IrHintPerf::build_with_m(&coll, 3);
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let mut got = idx.query(&q);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 6]);
    }

    #[test]
    fn matches_oracle_on_example_grid() {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        for m in [0u32, 1, 2, 3, 4] {
            let idx = IrHintPerf::build_with_m(&coll, m);
            for st in 0..16u64 {
                for end in st..16 {
                    for elems in [vec![0], vec![1], vec![2], vec![0, 2], vec![0, 1, 2]] {
                        let q = TimeTravelQuery::new(st, end, elems);
                        let mut got = idx.query(&q);
                        let n = got.len();
                        got.sort_unstable();
                        got.dedup();
                        assert_eq!(n, got.len(), "duplicates m={m} q={q:?}");
                        assert_eq!(got, bf.answer(&q), "m={m} q={q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn cost_model_build_works() {
        let coll = Collection::running_example();
        let idx = IrHintPerf::build(&coll);
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let mut got = idx.query(&q);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 6]);
    }

    #[test]
    fn updates_match_oracle() {
        let coll = Collection::running_example();
        let mut idx = IrHintPerf::build_with_m(&coll, 3);
        let mut bf = BruteForce::build(coll.objects());
        let o = Object::new(8, 4, 10, vec![0, 2]);
        idx.insert(&o);
        bf.insert(&o);
        assert!(idx.delete(coll.get(1)));
        bf.delete(coll.get(1));
        assert!(!idx.delete(coll.get(1)));
        for (st, end) in [(0u64, 15u64), (5, 9), (10, 12)] {
            for elems in [vec![0], vec![0, 2], vec![2]] {
                let q = TimeTravelQuery::new(st, end, elems);
                let mut got = idx.query(&q);
                got.sort_unstable();
                assert_eq!(got, bf.answer(&q));
            }
        }
    }

    #[test]
    fn replication_multiplies_description_size() {
        // Each assigned division stores |o.d| postings: the size-variant
        // motivation of Section 4.2.
        let coll = Collection::running_example();
        let idx = IrHintPerf::build_with_m(&coll, 3);
        let raw_postings: usize = coll.objects().iter().map(|o| o.desc.len()).sum();
        assert!(idx.num_postings() > raw_postings);
    }
}
