//! Time-aware postings lists: the building block of every IR-first index.

use crate::types::{Object, ObjectId, Timestamp};
use tir_invidx::{live, raw, TOMBSTONE};

/// A time-aware postings list `I[e]`: parallel arrays of
/// `⟨o.id, [o.tst, o.tend]⟩` entries sorted by (raw) object id, as in the
/// base temporal inverted file of Section 2.2.
#[derive(Debug, Clone, Default)]
pub struct TemporalList {
    /// Object ids (tombstone high bit marks logical deletes).
    pub ids: Vec<u32>,
    /// Interval starts.
    pub sts: Vec<Timestamp>,
    /// Interval ends.
    pub ends: Vec<Timestamp>,
}

impl TemporalList {
    /// Number of entries, including tombstoned ones.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the list stores no entry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends or inserts keeping raw-id order.
    pub fn insert(&mut self, id: ObjectId, st: Timestamp, end: Timestamp) {
        match self.ids.last() {
            Some(&last) if raw(last) > id => {
                let pos = self.ids.partition_point(|&x| raw(x) <= id);
                self.ids.insert(pos, id);
                self.sts.insert(pos, st);
                self.ends.insert(pos, end);
            }
            _ => {
                self.ids.push(id);
                self.sts.push(st);
                self.ends.push(end);
            }
        }
    }

    /// Tombstones the entry of `id`; returns true if found alive.
    pub fn tombstone(&mut self, id: ObjectId) -> bool {
        if let Ok(p) = self.ids.binary_search_by_key(&id, |&x| raw(x)) {
            if live(self.ids[p]) {
                self.ids[p] |= TOMBSTONE;
                return true;
            }
        }
        false
    }

    /// Appends to `out` every live id whose interval overlaps
    /// `[q_st, q_end]` — the temporal filter applied to the least-frequent
    /// element's list in Algorithm 1. Output order follows the list (i.e.
    /// ascending by id).
    pub fn filter_overlap_into(&self, q_st: Timestamp, q_end: Timestamp, out: &mut Vec<ObjectId>) {
        for i in 0..self.ids.len() {
            if live(self.ids[i]) && self.sts[i] <= q_end && self.ends[i] >= q_st {
                out.push(self.ids[i]);
            }
        }
    }

    /// Heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.ids.capacity() * 4 + (self.sts.capacity() + self.ends.capacity()) * 8
    }

    /// [`TemporalList::filter_overlap_into`] as a planner seed step:
    /// returns the number of entries scanned so the caller can charge the
    /// temporal filter pass to its query counters.
    pub fn seed_overlap_into(
        &self,
        q_st: Timestamp,
        q_end: Timestamp,
        out: &mut Vec<ObjectId>,
    ) -> usize {
        self.filter_overlap_into(q_st, q_end, out);
        self.ids.len()
    }
}

/// Builds one [`TemporalList`] per element from a collection of objects.
/// Objects must be visited in ascending id order for the lists to come out
/// sorted (true for [`crate::collection::Collection`]).
pub fn build_lists(objects: &[Object]) -> std::collections::HashMap<u32, TemporalList> {
    let mut lists: std::collections::HashMap<u32, TemporalList> = std::collections::HashMap::new();
    for o in objects {
        for &e in &o.desc {
            lists
                .entry(e)
                .or_default()
                .insert(o.id, o.interval.st, o.interval.end);
        }
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted() {
        let mut l = TemporalList::default();
        l.insert(5, 50, 55);
        l.insert(2, 20, 25);
        l.insert(9, 90, 95);
        assert_eq!(l.ids, vec![2, 5, 9]);
        assert_eq!(l.sts, vec![20, 50, 90]);
    }

    #[test]
    fn filter_overlap() {
        let mut l = TemporalList::default();
        l.insert(1, 0, 10);
        l.insert(2, 20, 30);
        l.insert(3, 5, 25);
        let mut out = Vec::new();
        l.filter_overlap_into(8, 22, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        out.clear();
        l.filter_overlap_into(11, 19, &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn tombstone_then_filter() {
        let mut l = TemporalList::default();
        l.insert(1, 0, 10);
        l.insert(2, 5, 15);
        assert!(l.tombstone(1));
        assert!(!l.tombstone(1));
        let mut out = Vec::new();
        l.filter_overlap_into(0, 100, &mut out);
        assert_eq!(out, vec![2]);
    }
}
