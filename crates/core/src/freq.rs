//! Element frequency tables and query planning order.
//!
//! Every index keeps its own frequency table so that query planning (sort
//! `q.d` by ascending document frequency, Section 2.2) stays correct under
//! inserts and deletes.

use crate::types::ElemId;

/// Mutable document-frequency table indexed by element id.
#[derive(Debug, Clone, Default)]
pub struct FreqTable {
    counts: Vec<u32>,
}

impl FreqTable {
    /// Copies the frequencies of a collection.
    pub fn from_counts(counts: &[u32]) -> Self {
        FreqTable {
            counts: counts.to_vec(),
        }
    }

    /// Document frequency of `e` (0 when unknown).
    #[inline]
    pub fn get(&self, e: ElemId) -> u32 {
        self.counts.get(e as usize).copied().unwrap_or(0)
    }

    /// Registers one more object containing `e`.
    pub fn bump(&mut self, e: ElemId) {
        if e as usize >= self.counts.len() {
            self.counts.resize(e as usize + 1, 0);
        }
        self.counts[e as usize] += 1;
    }

    /// Unregisters one object containing `e`.
    pub fn drop_one(&mut self, e: ElemId) {
        if let Some(c) = self.counts.get_mut(e as usize) {
            *c = c.saturating_sub(1);
        }
    }

    /// Returns the query elements sorted by ascending frequency and
    /// deduplicated — the evaluation order of Algorithm 1.
    pub fn plan(&self, elems: &[ElemId]) -> Vec<ElemId> {
        let mut q = Vec::new();
        self.plan_into(elems, &mut q);
        q
    }

    /// Allocation-free [`FreqTable::plan`]: writes the evaluation order
    /// into a reusable buffer (the planner scratch's `plan` vector).
    pub fn plan_into(&self, elems: &[ElemId], out: &mut Vec<ElemId>) {
        out.clear();
        out.extend_from_slice(elems);
        out.sort_unstable();
        out.dedup();
        // (freq, elem) keys make the unstable sort a deterministic
        // total order — same result as a stable by-freq sort over the
        // id-sorted input, without the stable sort's temp allocation
        // (this runs per query on the zero-alloc hot path).
        out.sort_unstable_by_key(|&e| (self.get(e), e));
    }

    /// Heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counts.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_orders_by_frequency() {
        let t = FreqTable::from_counts(&[10, 2, 5]);
        assert_eq!(t.plan(&[0, 1, 2]), vec![1, 2, 0]);
        assert_eq!(t.plan(&[2, 2, 0]), vec![2, 0]);
        assert_eq!(t.plan(&[]), Vec::<ElemId>::new());
    }

    #[test]
    fn bump_and_drop() {
        let mut t = FreqTable::default();
        t.bump(5);
        t.bump(5);
        assert_eq!(t.get(5), 2);
        assert_eq!(t.get(4), 0);
        t.drop_one(5);
        assert_eq!(t.get(5), 1);
        t.drop_one(9); // unknown: no-op
    }

    #[test]
    fn plan_is_stable_for_ties() {
        let t = FreqTable::from_counts(&[3, 3, 3]);
        assert_eq!(t.plan(&[2, 0, 1]), vec![0, 1, 2]);
    }
}
