//! **irHINT, size variant** (Section 4.2): a single HINT hierarchy where
//! every division keeps two decoupled structures — the plain interval
//! store of HINT (with all its optimizations, beneficial sorting included)
//! and a traditional inverted index holding only object ids. The temporal
//! information is stored once per division entry, shrinking the index at
//! the cost of probing two structures per division (Algorithm 6).

use std::collections::HashMap;

use crate::collection::Collection;
use crate::freq::FreqTable;
use crate::index_trait::TemporalIrIndex;
use crate::types::{ElemId, Object, ObjectId, TimeTravelQuery};
use tir_hint::{CheckMode, Hint, HintConfig, IntervalRecord};
use tir_invidx::planner::{Kernel, Postings, QueryScratch};
use tir_invidx::{live, CompactInverted};

type DivKey = (u32, u32, u8);

#[inline]
fn kind_u8(kind: tir_hint::DivisionKind) -> u8 {
    match kind {
        tir_hint::DivisionKind::OrigIn => 0,
        tir_hint::DivisionKind::OrigAft => 1,
        tir_hint::DivisionKind::ReplIn => 2,
        tir_hint::DivisionKind::ReplAft => 3,
    }
}

/// The size-focused irHINT index.
#[derive(Debug, Clone)]
pub struct IrHintSize {
    /// Interval store: a full-featured HINT over all objects.
    hint: Hint,
    /// Per-division inverted indexes (element → object ids).
    inv: HashMap<DivKey, CompactInverted>,
    freqs: FreqTable,
}

/// IR-aware choice of the number of HINT levels for composite indexes:
/// targets `per_part` objects per bottom-level partition, clamped to
/// `[2, 20]`. See [`crate::irhint_perf::IrHintPerf::build`] for why the
/// interval-only cost model over-partitions here.
pub fn choose_m_ir(n: usize, per_part: usize) -> u32 {
    let parts = (n as f64 / per_part.max(1) as f64).max(1.0);
    // analyze:allow(unguarded-cast): log2 of a value >= 1.0 is finite and non-negative, far below u32::MAX
    (parts.log2().ceil() as u32).clamp(2, 20)
}

impl IrHintSize {
    /// Builds with `m` chosen by the IR-aware cost heuristic
    /// [`choose_m_ir`] (smaller per-partition target than the performance
    /// variant: its per-division probes are cheaper, so finer partitions
    /// pay off).
    pub fn build(coll: &Collection) -> Self {
        Self::build_inner(coll, Some(choose_m_ir(coll.len(), 128)))
    }

    /// Builds with `m` chosen by the interval-only HINT cost model
    /// (kept for the ablation study).
    pub fn build_cost_model(coll: &Collection) -> Self {
        Self::build_inner(coll, None)
    }

    /// Builds with an explicit number of levels.
    pub fn build_with_m(coll: &Collection, m: u32) -> Self {
        Self::build_inner(coll, Some(m))
    }

    fn build_inner(coll: &Collection, m: Option<u32>) -> Self {
        let records: Vec<IntervalRecord> = coll
            .objects()
            .iter()
            .map(|o| IntervalRecord {
                id: o.id,
                st: o.interval.st,
                end: o.interval.end,
            })
            .collect();
        let d = coll.domain();
        let cfg = HintConfig {
            m,
            ..HintConfig::default()
        };
        let hint = Hint::build_with_domain(&records, d.st, d.end, cfg);

        let mut buffers: HashMap<DivKey, Vec<(u32, u32)>> = HashMap::new();
        for o in coll.objects() {
            let rec = IntervalRecord {
                id: o.id,
                st: o.interval.st,
                end: o.interval.end,
            };
            hint.divisions_of(&rec, |level, j, kind| {
                let buf = buffers.entry((level, j, kind_u8(kind))).or_default();
                for &e in &o.desc {
                    buf.push((e, o.id));
                }
            });
        }
        let inv = buffers
            .into_iter()
            .map(|(key, mut buf)| (key, CompactInverted::build(&mut buf)))
            .collect();
        IrHintSize {
            hint,
            inv,
            freqs: FreqTable::from_counts(coll.freqs()),
        }
    }

    /// The number of levels minus one.
    pub fn m(&self) -> u32 {
        self.hint.domain().m()
    }

    /// Total inverted postings (ids only) plus interval entries.
    pub fn num_postings(&self) -> usize {
        self.inv
            .values()
            .map(CompactInverted::num_postings)
            .sum::<usize>()
            + self.hint.num_entries()
    }

    /// Document frequency of an element as tracked by the planner.
    pub fn freq(&self, e: u32) -> u32 {
        self.freqs.get(e)
    }

    /// The interval store (introspection for validators).
    pub fn hint(&self) -> &Hint {
        &self.hint
    }

    /// Calls `f(level, j, kind code, inverted index)` for every
    /// materialized division inverted index, in unspecified order
    /// (introspection for validators). Kind codes follow
    /// `OrigIn=0, OrigAft=1, ReplIn=2, ReplAft=3`.
    pub fn for_each_division_index(&self, mut f: impl FnMut(u32, u32, u8, &CompactInverted)) {
        for (&(level, j, k), inv) in &self.inv {
            f(level, j, k, inv);
        }
    }

    /// `QueryIF` (Algorithm 6): intersect the division's temporal
    /// candidates (already sorted in `scratch.cands`) with the postings
    /// of every query element.
    fn query_if(
        &self,
        key: DivKey,
        scratch: &mut QueryScratch,
        plan: &[ElemId],
        out: &mut Vec<ObjectId>,
    ) {
        let Some(inv) = self.inv.get(&key) else {
            // No inverted index for this division: it contributes nothing,
            // and the candidates must not leak into the next division.
            scratch.cands.clear();
            return;
        };
        for &e in plan {
            if scratch.cands.is_empty() {
                return;
            }
            scratch.intersect(Postings::Ids(inv.postings(e)));
        }
        out.append(&mut scratch.cands);
    }
}

impl TemporalIrIndex for IrHintSize {
    fn name(&self) -> &'static str {
        "irHINT(size)"
    }

    fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        self.query_into(q, &mut scratch, &mut out);
        out
    }

    fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<ObjectId>) {
        scratch.reset();
        self.freqs.plan_into(&q.elems, &mut scratch.plan);
        if scratch.plan.is_empty() {
            return;
        }
        // The plan is borrowed across the division visits while the
        // scratch is mutated, so move it out and restore it after.
        let plan = std::mem::take(&mut scratch.plan);
        let (q_st, q_end) = (q.interval.st, q.interval.end);
        self.hint.visit_relevant(q_st, q_end, |view, mode| {
            // Step 1 (range query on the interval store): collect the
            // division's temporally qualifying object ids.
            scratch.cands.clear();
            for (i, &id) in view.ids.iter().enumerate() {
                if !live(id) {
                    continue;
                }
                let ok = match mode {
                    CheckMode::None => true,
                    CheckMode::Start => view.sts[i] <= q_end,
                    CheckMode::End => view.ends[i] >= q_st,
                    CheckMode::Both => view.sts[i] <= q_end && view.ends[i] >= q_st,
                };
                if ok {
                    scratch.cands.push(id);
                }
            }
            scratch.note(Kernel::Merge, view.ids.len() as u64);
            if scratch.cands.is_empty() {
                return;
            }
            scratch.cands.sort_unstable();
            // Step 2: intersect with the division's inverted index.
            self.query_if(
                (view.level, view.j, kind_u8(view.kind)),
                scratch,
                &plan,
                out,
            );
        });
        scratch.plan = plan;
        scratch.take_into(out);
    }

    fn insert(&mut self, o: &Object) {
        let rec = IntervalRecord {
            id: o.id,
            st: o.interval.st,
            end: o.interval.end,
        };
        self.hint.insert(&rec);
        let inv = &mut self.inv;
        let desc = &o.desc;
        self.hint.divisions_of(&rec, |level, j, kind| {
            let e_inv = inv.entry((level, j, kind_u8(kind))).or_default();
            for &e in desc {
                e_inv.insert(e, o.id);
            }
        });
        for &e in desc {
            self.freqs.bump(e);
        }
    }

    fn delete(&mut self, o: &Object) -> bool {
        let rec = IntervalRecord {
            id: o.id,
            st: o.interval.st,
            end: o.interval.end,
        };
        let found = self.hint.delete(&rec);
        let inv = &mut self.inv;
        let desc = &o.desc;
        self.hint.divisions_of(&rec, |level, j, kind| {
            if let Some(e_inv) = inv.get_mut(&(level, j, kind_u8(kind))) {
                for &e in desc {
                    e_inv.tombstone(e, o.id);
                }
            }
        });
        if found {
            for &e in desc {
                self.freqs.drop_one(e);
            }
        }
        found
    }

    fn size_bytes(&self) -> usize {
        self.hint.size_bytes()
            + self
                .inv
                .values()
                .map(|i| i.size_bytes() + std::mem::size_of::<CompactInverted>() + 24)
                .sum::<usize>()
            + self.freqs.size_bytes()
    }

    fn insert_batch(&mut self, batch: &[Object]) {
        // Interval store: per-record inserts (one entry per division);
        // inverted part: one merge-rebuild per touched division.
        let mut buffers: HashMap<DivKey, Vec<(u32, u32)>> = HashMap::new();
        for o in batch {
            let rec = IntervalRecord {
                id: o.id,
                st: o.interval.st,
                end: o.interval.end,
            };
            self.hint.insert(&rec);
            self.hint.divisions_of(&rec, |level, j, kind| {
                let buf = buffers.entry((level, j, kind_u8(kind))).or_default();
                for &e in &o.desc {
                    buf.push((e, o.id));
                }
            });
            for &e in &o.desc {
                self.freqs.bump(e);
            }
        }
        for (key, mut buf) in buffers {
            self.inv.entry(key).or_default().merge_in(&mut buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irhint_perf::IrHintPerf;
    use crate::oracle::BruteForce;

    #[test]
    fn running_example() {
        let coll = Collection::running_example();
        let idx = IrHintSize::build_with_m(&coll, 3);
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let mut got = idx.query(&q);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 6]);
    }

    #[test]
    fn matches_oracle_on_example_grid() {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        for m in [0u32, 1, 2, 3, 4] {
            let idx = IrHintSize::build_with_m(&coll, m);
            for st in 0..16u64 {
                for end in st..16 {
                    for elems in [vec![0], vec![1], vec![2], vec![0, 2], vec![0, 1, 2]] {
                        let q = TimeTravelQuery::new(st, end, elems);
                        let mut got = idx.query(&q);
                        let n = got.len();
                        got.sort_unstable();
                        got.dedup();
                        assert_eq!(n, got.len(), "duplicates m={m} q={q:?}");
                        assert_eq!(got, bf.answer(&q), "m={m} q={q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn size_variant_is_smaller_than_perf_variant() {
        // The whole point of Section 4.2: temporal data stored once per
        // division entry instead of once per (entry, element).
        let coll = Collection::running_example();
        let size = IrHintSize::build_with_m(&coll, 3);
        let perf = IrHintPerf::build_with_m(&coll, 3);
        assert!(
            size.size_bytes() < perf.size_bytes(),
            "size variant {} vs perf {}",
            size.size_bytes(),
            perf.size_bytes()
        );
    }

    #[test]
    fn updates_match_oracle() {
        let coll = Collection::running_example();
        let mut idx = IrHintSize::build_with_m(&coll, 3);
        let mut bf = BruteForce::build(coll.objects());
        let o = Object::new(8, 0, 3, vec![0, 1]);
        idx.insert(&o);
        bf.insert(&o);
        assert!(idx.delete(coll.get(5)));
        bf.delete(coll.get(5));
        assert!(!idx.delete(coll.get(5)));
        for (st, end) in [(0u64, 15u64), (5, 9), (0, 2)] {
            for elems in [vec![0], vec![0, 1], vec![2]] {
                let q = TimeTravelQuery::new(st, end, elems);
                let mut got = idx.query(&q);
                got.sort_unstable();
                assert_eq!(got, bf.answer(&q));
            }
        }
    }
}
