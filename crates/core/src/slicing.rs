//! **tIF+Slicing** (Berberich et al., Section 2.2): the time domain is cut
//! into disjoint slices and every postings list is vertically divided into
//! per-slice sub-lists, replicating entries into each slice they overlap.
//! Duplicate results are avoided with the reference value method.

use std::collections::HashMap;

use crate::collection::Collection;
use crate::freq::FreqTable;
use crate::index_trait::TemporalIrIndex;
use crate::postings::TemporalList;
use crate::types::{Object, ObjectId, TimeTravelQuery, Timestamp};
use tir_invidx::live;
use tir_invidx::planner::{Kernel, QueryScratch};

/// Default slice count; Section 5.2 selects 50 as the smallest value in
/// the highest-throughput plateau.
pub const DEFAULT_SLICES: u32 = 50;

/// A postings list divided into per-slice sub-lists. Sparse: only the
/// slices between the first and last covered one are materialized.
#[derive(Debug, Clone, Default)]
struct SlicedList {
    first: u32,
    subs: Vec<TemporalList>,
}

impl SlicedList {
    fn ensure_covers(&mut self, lo: u32, hi: u32) {
        if self.subs.is_empty() {
            self.first = lo;
            self.subs
                .resize_with((hi - lo + 1) as usize, TemporalList::default);
            return;
        }
        if lo < self.first {
            let grow = (self.first - lo) as usize;
            let mut fresh: Vec<TemporalList> = Vec::with_capacity(grow + self.subs.len());
            fresh.resize_with(grow, TemporalList::default);
            fresh.append(&mut self.subs);
            self.subs = fresh;
            self.first = lo;
        }
        // analyze:allow(unguarded-cast): per-element slice count is bounded by k: u32
        let last = self.first + self.subs.len() as u32 - 1;
        if hi > last {
            self.subs.resize_with(
                self.subs.len() + (hi - last) as usize,
                TemporalList::default,
            );
        }
    }

    fn sub(&self, s: u32) -> Option<&TemporalList> {
        if s < self.first {
            return None;
        }
        self.subs.get((s - self.first) as usize)
    }

    fn size_bytes(&self) -> usize {
        self.subs
            .iter()
            .map(|l| l.size_bytes() + std::mem::size_of::<TemporalList>())
            .sum()
    }
}

/// The tIF+Slicing index.
#[derive(Debug, Clone)]
pub struct TifSlicing {
    domain_min: Timestamp,
    domain_max: Timestamp,
    k: u32,
    lists: HashMap<u32, SlicedList>,
    freqs: FreqTable,
}

impl TifSlicing {
    /// Builds with the default slice count.
    pub fn build(coll: &Collection) -> Self {
        Self::build_with_slices(coll, DEFAULT_SLICES)
    }

    /// Builds with `k` slices over the collection's domain.
    pub fn build_with_slices(coll: &Collection, k: u32) -> Self {
        assert!(k >= 1);
        let d = coll.domain();
        let mut idx = TifSlicing {
            domain_min: d.st,
            domain_max: d.end,
            k,
            lists: HashMap::new(),
            freqs: FreqTable::from_counts(coll.freqs()),
        };
        for o in coll.objects() {
            idx.place(o);
        }
        idx
    }

    /// Slice index of a raw timestamp (clamped to the domain).
    #[inline]
    pub fn slice_of(&self, t: Timestamp) -> u32 {
        let t = t.clamp(self.domain_min, self.domain_max);
        let span = (self.domain_max - self.domain_min) as u128 + 1;
        // analyze:allow(unguarded-cast): quotient is < k, and k is already a u32
        (((t - self.domain_min) as u128 * self.k as u128) / span) as u32
    }

    /// Number of slices.
    pub fn num_slices(&self) -> u32 {
        self.k
    }

    /// Total stored postings, counting replication.
    pub fn num_postings(&self) -> usize {
        self.lists
            .values()
            .flat_map(|sl| sl.subs.iter())
            .map(TemporalList::len)
            .sum()
    }

    /// Document frequency of an element as tracked by the planner.
    pub fn freq(&self, e: u32) -> u32 {
        self.freqs.get(e)
    }

    /// Calls `f(element, slice, sub-list)` for every materialized
    /// sub-list, slices ascending per element (introspection for
    /// validators).
    pub fn for_each_sublist(&self, mut f: impl FnMut(u32, u32, &TemporalList)) {
        for (&e, sl) in &self.lists {
            for (i, sub) in sl.subs.iter().enumerate() {
                // analyze:allow(unguarded-cast): sub-list index is bounded by k: u32
                f(e, sl.first + i as u32, sub);
            }
        }
    }

    fn place(&mut self, o: &Object) {
        let lo = self.slice_of(o.interval.st);
        let hi = self.slice_of(o.interval.end);
        for &e in &o.desc {
            let sl = self.lists.entry(e).or_default();
            sl.ensure_covers(lo, hi);
            for s in lo..=hi {
                sl.subs[(s - sl.first) as usize].insert(o.id, o.interval.st, o.interval.end);
            }
        }
    }
}

impl TemporalIrIndex for TifSlicing {
    fn name(&self) -> &'static str {
        "tIF+Slicing"
    }

    fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        self.query_into(q, &mut scratch, &mut out);
        out
    }

    fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<ObjectId>) {
        scratch.reset();
        self.freqs.plan_into(&q.elems, &mut scratch.plan);
        if scratch.plan.is_empty() {
            return;
        }
        let (q_st, q_end) = (q.interval.st, q.interval.end);
        let s_lo = self.slice_of(q_st);
        let s_hi = self.slice_of(q_end);

        // Least frequent element: temporal filter + reference-value dedup.
        let first = scratch.plan[0];
        let mut scanned = 0u64;
        if let Some(sl) = self.lists.get(&first) {
            for s in s_lo..=s_hi {
                let Some(sub) = sl.sub(s) else { continue };
                scanned += sub.ids.len() as u64;
                for i in 0..sub.ids.len() {
                    if live(sub.ids[i]) && sub.sts[i] <= q_end && sub.ends[i] >= q_st {
                        // Reference value: report only from the slice
                        // containing max(o.st, q.st).
                        if self.slice_of(sub.sts[i].max(q_st)) == s {
                            scratch.cands.push(sub.ids[i]);
                        }
                    }
                }
            }
        }
        scratch.note(Kernel::Merge, scanned);
        scratch.cands.sort_unstable();

        // Remaining elements: merge-mark the sorted candidate set against
        // each relevant id-sorted sub-list. A candidate may be replicated
        // into several slices, so hits are marked rather than emitted
        // directly; compaction keeps the set sorted for the next round.
        for pi in 1..scratch.plan.len() {
            if scratch.cands.is_empty() {
                break;
            }
            let e = scratch.plan[pi];
            let mut cands = std::mem::take(&mut scratch.cands);
            scratch.begin_mark(cands.len());
            if let Some(sl) = self.lists.get(&e) {
                for s in s_lo..=s_hi {
                    let Some(sub) = sl.sub(s) else { continue };
                    scratch.mark(&cands, &sub.ids);
                }
            }
            scratch.finish_mark(&mut cands);
            scratch.cands = cands;
        }
        scratch.take_into(out);
    }

    fn insert(&mut self, o: &Object) {
        self.place(o);
        for &e in &o.desc {
            self.freqs.bump(e);
        }
    }

    fn delete(&mut self, o: &Object) -> bool {
        let lo = self.slice_of(o.interval.st);
        let hi = self.slice_of(o.interval.end);
        let mut any = false;
        for &e in &o.desc {
            if let Some(sl) = self.lists.get_mut(&e) {
                let mut found = false;
                for s in lo..=hi {
                    if s >= sl.first {
                        if let Some(sub) = sl.subs.get_mut((s - sl.first) as usize) {
                            found |= sub.tombstone(o.id);
                        }
                    }
                }
                if found {
                    self.freqs.drop_one(e);
                    any = true;
                }
            }
        }
        any
    }

    fn size_bytes(&self) -> usize {
        self.lists
            .values()
            .map(|sl| sl.size_bytes() + std::mem::size_of::<SlicedList>() + 16)
            .sum::<usize>()
            + self.freqs.size_bytes()
    }
}

/// Tunes the slice count per Berberich et al.: among candidate counts
/// whose replication blow-up stays within `max_blowup` (factor over the
/// unreplicated size), picks the one minimizing the expected number of
/// postings read for a query of `extent` (fraction of the domain).
///
/// The expected read cost for `k` slices is
/// `E[k] = postings(k) * (extent + 1/k)`: a query overlaps about
/// `extent * k + 1` of the `k` slices and reads the entries replicated
/// into them.
pub fn tune_num_slices(coll: &Collection, candidates: &[u32], max_blowup: f64, extent: f64) -> u32 {
    let d = coll.domain();
    let span = (d.end - d.st) as u128 + 1;
    let base: u64 = coll.objects().iter().map(|o| o.desc.len() as u64).sum();
    let mut best = (f64::INFINITY, 1u32);
    for &k in candidates {
        assert!(k >= 1);
        // analyze:allow(unguarded-cast): quotient is < k, a u32 candidate value
        let slice_of = |t: Timestamp| -> u32 { (((t - d.st) as u128 * k as u128) / span) as u32 };
        let mut postings: u64 = 0;
        for o in coll.objects() {
            let copies = (slice_of(o.interval.end) - slice_of(o.interval.st) + 1) as u64;
            postings += copies * o.desc.len() as u64;
        }
        if base > 0 && postings as f64 / base as f64 > max_blowup {
            continue;
        }
        let cost = postings as f64 * (extent + 1.0 / k as f64);
        if cost < best.0 {
            best = (cost, k);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BruteForce;

    #[test]
    fn running_example_with_four_slices() {
        // Figure 2 of the paper uses 4 slices.
        let coll = Collection::running_example();
        let idx = TifSlicing::build_with_slices(&coll, 4);
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let mut got = idx.query(&q);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 6]);
    }

    #[test]
    fn matches_oracle_for_many_slice_counts() {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        for k in [1u32, 2, 3, 4, 8, 16] {
            let idx = TifSlicing::build_with_slices(&coll, k);
            for st in 0..16u64 {
                for end in st..16 {
                    for elems in [vec![0], vec![2], vec![0, 2], vec![0, 1, 2]] {
                        let q = TimeTravelQuery::new(st, end, elems);
                        let mut got = idx.query(&q);
                        let n = got.len();
                        got.sort_unstable();
                        got.dedup();
                        assert_eq!(n, got.len(), "duplicates k={k} q={q:?}");
                        assert_eq!(got, bf.answer(&q), "k={k} q={q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn replication_counted() {
        let coll = Collection::running_example();
        let k1 = TifSlicing::build_with_slices(&coll, 1);
        let k8 = TifSlicing::build_with_slices(&coll, 8);
        assert!(k8.num_postings() > k1.num_postings());
    }

    #[test]
    fn updates_match_oracle() {
        let coll = Collection::running_example();
        let mut idx = TifSlicing::build_with_slices(&coll, 4);
        let mut bf = BruteForce::build(coll.objects());
        let o = Object::new(8, 0, 15, vec![0, 2]);
        idx.insert(&o);
        bf.insert(&o);
        assert!(idx.delete(coll.get(3)));
        bf.delete(coll.get(3));
        assert!(!idx.delete(coll.get(3)));
        for (st, end) in [(0u64, 15u64), (5, 9), (14, 15)] {
            let q = TimeTravelQuery::new(st, end, vec![0, 2]);
            let mut got = idx.query(&q);
            got.sort_unstable();
            assert_eq!(got, bf.answer(&q));
        }
    }

    #[test]
    fn tuner_respects_budget() {
        let coll = Collection::running_example();
        // With a tight budget, huge slice counts must be rejected.
        let k = tune_num_slices(&coll, &[1, 4, 16, 64], 1.5, 0.001);
        let idx_k = TifSlicing::build_with_slices(&coll, k);
        let base = TifSlicing::build_with_slices(&coll, 1);
        assert!(idx_k.num_postings() as f64 <= 1.5 * base.num_postings() as f64);
    }
}
