//! Brute-force reference implementation used as the correctness oracle in
//! every test suite.

use crate::index_trait::TemporalIrIndex;
use crate::types::{Object, ObjectId, TimeTravelQuery};

/// Sequential scan over the stored objects; `O(n)` per query.
#[derive(Debug, Clone, Default)]
pub struct BruteForce {
    objects: Vec<Object>,
    deleted: Vec<bool>,
}

impl BruteForce {
    /// Builds from a slice of objects.
    pub fn build(objects: &[Object]) -> Self {
        BruteForce {
            objects: objects.to_vec(),
            deleted: vec![false; objects.len()],
        }
    }

    /// Calls `f` for every live (non-deleted) object — introspection for
    /// snapshot writers and validators.
    pub fn for_each_live(&self, mut f: impl FnMut(&Object)) {
        for (o, &dead) in self.objects.iter().zip(&self.deleted) {
            if !dead {
                f(o);
            }
        }
    }

    /// Sorted answer to a query — the canonical expected value.
    pub fn answer(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
        if q.elems.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<ObjectId> = self
            .objects
            .iter()
            .zip(&self.deleted)
            .filter(|(o, &dead)| !dead && q.matches(o))
            .map(|(o, _)| o.id)
            .collect();
        out.sort_unstable();
        out
    }
}

impl TemporalIrIndex for BruteForce {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
        self.answer(q)
    }

    fn insert(&mut self, o: &Object) {
        self.objects.push(o.clone());
        self.deleted.push(false);
    }

    fn delete(&mut self, o: &Object) -> bool {
        for (i, stored) in self.objects.iter().enumerate() {
            if stored.id == o.id && !self.deleted[i] {
                self.deleted[i] = true;
                return true;
            }
        }
        false
    }

    fn size_bytes(&self) -> usize {
        self.objects
            .iter()
            .map(|o| std::mem::size_of::<Object>() + o.desc.capacity() * 4)
            .sum::<usize>()
            + self.deleted.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;

    #[test]
    fn running_example() {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        assert_eq!(bf.answer(&q), vec![1, 3, 6]);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        assert!(bf.answer(&TimeTravelQuery::new(0, 100, vec![])).is_empty());
    }

    #[test]
    fn insert_and_delete() {
        let coll = Collection::running_example();
        let mut bf = BruteForce::build(coll.objects());
        let o = Object::new(8, 5, 6, vec![0, 2]);
        bf.insert(&o);
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        assert_eq!(bf.query(&q), vec![1, 3, 6, 8]);
        assert!(bf.delete(&o));
        assert!(!bf.delete(&o));
        assert_eq!(bf.query(&q), vec![1, 3, 6]);
    }
}
