//! The common interface of every temporal-IR index in this crate.

use crate::types::{Object, ObjectId, TimeTravelQuery};
use tir_invidx::QueryScratch;

/// A time-travel IR index: answers [`TimeTravelQuery`]s and supports
/// incremental maintenance.
///
/// Contract shared by all implementations:
///
/// * `query` returns the exact answer set of Definition 2.1, with **every
///   qualifying id exactly once**, in unspecified order;
/// * a query whose `elems` is empty returns an empty result (the paper's
///   queries always carry at least one element);
/// * `insert` may use ids larger than anything indexed so far; re-using a
///   live id is a caller bug;
/// * `delete` is *logical* (tombstones), returns whether the object was
///   found, and is idempotent.
pub trait TemporalIrIndex {
    /// Short stable name used in benchmark tables (e.g. `"tIF+Slicing"`).
    fn name(&self) -> &'static str;

    /// Answers a time-travel IR query.
    fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId>;

    /// Answers a query through a reusable [`QueryScratch`], appending the
    /// answer set to `out`. Steady-state callers that hold one scratch
    /// and one output buffer per worker (the serve pool, bench loops)
    /// thereby amortize every intermediate allocation; per-query planner
    /// counters land in [`QueryScratch::last_stats`]. The default
    /// delegates to [`Self::query`]; every index in this crate overrides
    /// both methods so neither falls through to the other.
    fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<ObjectId>) {
        let _ = scratch;
        out.extend(self.query(q));
    }

    /// Adds one object.
    fn insert(&mut self, o: &Object);

    /// Logically deletes one object; the caller passes the full object so
    /// the index can locate its entries. Returns true if found alive.
    fn delete(&mut self, o: &Object) -> bool;

    /// Approximate heap footprint in bytes.
    fn size_bytes(&self) -> usize;

    /// Adds a batch of objects. The default loops over [`Self::insert`];
    /// composite indexes override it with a merge-rebuild of every
    /// touched division, which is what the paper's batch-insert
    /// experiments (Table 6) measure.
    fn insert_batch(&mut self, batch: &[Object]) {
        for o in batch {
            self.insert(o);
        }
    }
}

/// A heap-allocated index behind the common trait, shareable across
/// threads — the snapshot currency of the serving layer (`tir-serve`
/// wraps one per epoch in an `Arc`).
pub type SharedIndex = Box<dyn TemporalIrIndex + Send + Sync>;

// Compile-time `Send + Sync` audit: every index implementation must be
// safely shareable across reader threads (queries take `&self`) and
// transferable to the single-writer applier thread of the serving layer.
// A new index type that smuggles in `Rc`/`RefCell`/raw-pointer state
// breaks this `const` block at compile time, not in a stress test.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<crate::compressed_tif::CompressedTif>();
    assert_send_sync::<crate::hybrid::TifHintSlicing>();
    assert_send_sync::<crate::irhint_perf::IrHintPerf>();
    assert_send_sync::<crate::irhint_size::IrHintSize>();
    assert_send_sync::<crate::oracle::BruteForce>();
    assert_send_sync::<crate::ranked::RankedTif>();
    assert_send_sync::<crate::sharding::TifSharding>();
    assert_send_sync::<crate::slicing::TifSlicing>();
    assert_send_sync::<crate::tif::Tif>();
    assert_send_sync::<crate::tif_hint::TifHint>();
    assert_send_sync::<SharedIndex>();
    assert_send_sync::<std::sync::Arc<dyn TemporalIrIndex + Send + Sync>>();
};

/// Inserts a batch of objects (the paper's insertion experiments use 1%,
/// 5% and 10% batches).
pub fn insert_batch<I: TemporalIrIndex + ?Sized>(index: &mut I, batch: &[Object]) {
    index.insert_batch(batch);
}

/// Deletes a batch of objects; returns how many were found.
pub fn delete_batch<I: TemporalIrIndex + ?Sized>(index: &mut I, batch: &[Object]) -> usize {
    batch.iter().filter(|o| index.delete(o)).count()
}
