//! **tIF+HINT+Slicing** (Section 3.2): a dual-copy IR-first hybrid. Each
//! postings list is stored twice — once as an id-sorted HINT used to
//! answer the time-travel part on the least frequent element, and once as
//! time-sliced sub-lists of `⟨o.id, o.tst⟩` pairs used for the follow-up
//! intersections, which touch far fewer partitions than HINT divisions.

use std::collections::HashMap;

use crate::collection::Collection;
use crate::freq::FreqTable;
use crate::index_trait::TemporalIrIndex;
use crate::types::{Object, ObjectId, TimeTravelQuery, Timestamp};
use tir_hint::{DivisionOrder, Hint, HintConfig, IntervalRecord};
use tir_invidx::planner::{Kernel, QueryScratch};
use tir_invidx::{live, raw, TOMBSTONE};

/// Default HINT levels for the hybrid; Section 5.2 tunes `m = 5`.
pub const DEFAULT_M: u32 = 5;

/// A slice sub-list storing `⟨id, tst⟩` pairs sorted by id. The interval
/// end is omitted (Section 3.2): after the HINT pass, intersections no
/// longer check the temporal predicate, and the start alone supports the
/// reference-value de-duplication the paper falls back to.
#[derive(Debug, Clone, Default)]
struct IdStList {
    ids: Vec<u32>,
    sts: Vec<Timestamp>,
}

impl IdStList {
    fn insert(&mut self, id: u32, st: Timestamp) {
        match self.ids.last() {
            Some(&last) if raw(last) > id => {
                let pos = self.ids.partition_point(|&x| raw(x) <= id);
                self.ids.insert(pos, id);
                self.sts.insert(pos, st);
            }
            _ => {
                self.ids.push(id);
                self.sts.push(st);
            }
        }
    }

    fn size_bytes(&self) -> usize {
        self.ids.capacity() * 4 + self.sts.capacity() * 8
    }
}

/// Sparse sliced copy of one postings list.
#[derive(Debug, Clone, Default)]
struct SlicedCopy {
    first: u32,
    subs: Vec<IdStList>,
}

/// The tIF+HINT+Slicing hybrid index.
#[derive(Debug, Clone)]
pub struct TifHintSlicing {
    hints: HashMap<u32, Hint>,
    slices: HashMap<u32, SlicedCopy>,
    freqs: FreqTable,
    domain_min: Timestamp,
    domain_max: Timestamp,
    k: u32,
    m: u32,
}

impl TifHintSlicing {
    /// Builds with the paper-tuned defaults (`m = 5`, 50 slices).
    pub fn build(coll: &Collection) -> Self {
        Self::build_with_params(coll, DEFAULT_M, crate::slicing::DEFAULT_SLICES)
    }

    /// Builds with explicit HINT levels and slice count.
    pub fn build_with_params(coll: &Collection, m: u32, k: u32) -> Self {
        assert!(k >= 1);
        let d = coll.domain();
        let mut per_elem: HashMap<u32, Vec<IntervalRecord>> = HashMap::new();
        for o in coll.objects() {
            let rec = IntervalRecord {
                id: o.id,
                st: o.interval.st,
                end: o.interval.end,
            };
            for &e in &o.desc {
                per_elem.entry(e).or_default().push(rec);
            }
        }
        let cfg = HintConfig {
            m: Some(m),
            order: DivisionOrder::ById,
            storage_opt: true,
        };
        let hints = per_elem
            .iter()
            .map(|(&e, recs)| (e, Hint::build_with_domain(recs, d.st, d.end, cfg)))
            .collect();
        let mut idx = TifHintSlicing {
            hints,
            slices: HashMap::new(),
            freqs: FreqTable::from_counts(coll.freqs()),
            domain_min: d.st,
            domain_max: d.end,
            k,
            m,
        };
        for (e, recs) in per_elem {
            for r in recs {
                idx.place_slice(e, r.id, r.st, r.end);
            }
        }
        idx
    }

    /// Slice index of a raw timestamp (clamped to the domain).
    #[inline]
    fn slice_of(&self, t: Timestamp) -> u32 {
        let t = t.clamp(self.domain_min, self.domain_max);
        let span = (self.domain_max - self.domain_min) as u128 + 1;
        // analyze:allow(unguarded-cast): quotient is < k, and k is already a u32
        (((t - self.domain_min) as u128 * self.k as u128) / span) as u32
    }

    fn place_slice(&mut self, e: u32, id: u32, st: Timestamp, end: Timestamp) {
        let lo = self.slice_of(st);
        let hi = self.slice_of(end);
        let sc = self.slices.entry(e).or_default();
        if sc.subs.is_empty() {
            sc.first = lo;
            sc.subs
                .resize_with((hi - lo + 1) as usize, IdStList::default);
        } else {
            if lo < sc.first {
                let grow = (sc.first - lo) as usize;
                let mut fresh: Vec<IdStList> = Vec::with_capacity(grow + sc.subs.len());
                fresh.resize_with(grow, IdStList::default);
                fresh.append(&mut sc.subs);
                sc.subs = fresh;
                sc.first = lo;
            }
            // analyze:allow(unguarded-cast): per-element slice count is bounded by k: u32
            let last = sc.first + sc.subs.len() as u32 - 1;
            if hi > last {
                sc.subs
                    .resize_with(sc.subs.len() + (hi - last) as usize, IdStList::default);
            }
        }
        for s in lo..=hi {
            sc.subs[(s - sc.first) as usize].insert(id, st);
        }
    }

    /// Total stored postings across both copies.
    pub fn num_postings(&self) -> usize {
        let hint_entries: usize = self.hints.values().map(Hint::num_entries).sum();
        let slice_entries: usize = self
            .slices
            .values()
            .flat_map(|sc| sc.subs.iter())
            .map(|l| l.ids.len())
            .sum();
        hint_entries + slice_entries
    }

    /// The configured HINT levels parameter.
    pub fn m(&self) -> u32 {
        self.m
    }
}

impl TemporalIrIndex for TifHintSlicing {
    fn name(&self) -> &'static str {
        "tIF+HINT+Slicing"
    }

    fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        self.query_into(q, &mut scratch, &mut out);
        out
    }

    fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<ObjectId>) {
        scratch.reset();
        self.freqs.plan_into(&q.elems, &mut scratch.plan);
        if scratch.plan.is_empty() {
            return;
        }
        let first = scratch.plan[0];
        let Some(h0) = self.hints.get(&first) else {
            scratch.take_into(out);
            return;
        };
        h0.range_query_into(q.interval.st, q.interval.end, &mut scratch.cands);
        scratch.note(Kernel::Merge, scratch.cands.len() as u64);

        scratch.cands.sort_unstable();

        // Remaining elements: merge-mark the sorted candidate set against
        // the sliced copies. A candidate is replicated into every slice it
        // overlaps, so hits are marked across sub-lists and compacted once
        // per round, which keeps the set sorted and emits each id once.
        let s_lo = self.slice_of(q.interval.st);
        let s_hi = self.slice_of(q.interval.end);
        for pi in 1..scratch.plan.len() {
            if scratch.cands.is_empty() {
                break;
            }
            let e = scratch.plan[pi];
            let mut cands = std::mem::take(&mut scratch.cands);
            scratch.begin_mark(cands.len());
            if let Some(sc) = self.slices.get(&e) {
                for s in s_lo..=s_hi {
                    if s < sc.first {
                        continue;
                    }
                    if let Some(sub) = sc.subs.get((s - sc.first) as usize) {
                        scratch.mark(&cands, &sub.ids);
                    }
                }
            }
            scratch.finish_mark(&mut cands);
            scratch.cands = cands;
        }
        scratch.take_into(out);
    }

    fn insert(&mut self, o: &Object) {
        let rec = IntervalRecord {
            id: o.id,
            st: o.interval.st,
            end: o.interval.end,
        };
        let cfg = HintConfig {
            m: Some(self.m),
            order: DivisionOrder::ById,
            storage_opt: true,
        };
        let (dmin, dmax) = (self.domain_min, self.domain_max);
        for &e in &o.desc {
            self.hints
                .entry(e)
                .or_insert_with(|| Hint::build_with_domain(&[], dmin, dmax, cfg))
                .insert(&rec);
            self.freqs.bump(e);
        }
        for &e in &o.desc {
            self.place_slice(e, o.id, o.interval.st, o.interval.end);
        }
    }

    fn delete(&mut self, o: &Object) -> bool {
        let rec = IntervalRecord {
            id: o.id,
            st: o.interval.st,
            end: o.interval.end,
        };
        let lo = self.slice_of(o.interval.st);
        let hi = self.slice_of(o.interval.end);
        let mut any = false;
        for &e in &o.desc {
            let mut found = false;
            if let Some(h) = self.hints.get_mut(&e) {
                found |= h.delete(&rec);
            }
            if let Some(sc) = self.slices.get_mut(&e) {
                for s in lo..=hi {
                    if s < sc.first {
                        continue;
                    }
                    if let Some(sub) = sc.subs.get_mut((s - sc.first) as usize) {
                        if let Ok(p) = sub.ids.binary_search_by_key(&o.id, |&x| raw(x)) {
                            if live(sub.ids[p]) {
                                sub.ids[p] |= TOMBSTONE;
                            }
                        }
                    }
                }
            }
            if found {
                self.freqs.drop_one(e);
                any = true;
            }
        }
        any
    }

    fn size_bytes(&self) -> usize {
        let hints: usize = self.hints.values().map(|h| h.size_bytes() + 16).sum();
        let slices: usize = self
            .slices
            .values()
            .map(|sc| {
                sc.subs.iter().map(IdStList::size_bytes).sum::<usize>()
                    + sc.subs.capacity() * std::mem::size_of::<IdStList>()
                    + 16
            })
            .sum();
        hints + slices + self.freqs.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BruteForce;

    #[test]
    fn running_example() {
        let coll = Collection::running_example();
        let idx = TifHintSlicing::build_with_params(&coll, 3, 4);
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let mut got = idx.query(&q);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 6]);
    }

    #[test]
    fn matches_oracle_on_example_grid() {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        for (m, k) in [(2u32, 1u32), (3, 4), (4, 8), (5, 16)] {
            let idx = TifHintSlicing::build_with_params(&coll, m, k);
            for st in 0..16u64 {
                for end in st..16 {
                    for elems in [vec![0], vec![2], vec![0, 2], vec![0, 1, 2]] {
                        let q = TimeTravelQuery::new(st, end, elems);
                        let mut got = idx.query(&q);
                        let n = got.len();
                        got.sort_unstable();
                        got.dedup();
                        assert_eq!(n, got.len(), "duplicates m={m} k={k}");
                        assert_eq!(got, bf.answer(&q), "m={m} k={k} q={q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn dual_structure_is_larger_than_single() {
        let coll = Collection::running_example();
        let hybrid = TifHintSlicing::build_with_params(&coll, 3, 4);
        let raw_postings: usize = coll.objects().iter().map(|o| o.desc.len()).sum();
        assert!(hybrid.num_postings() >= 2 * raw_postings);
    }

    #[test]
    fn updates_match_oracle() {
        let coll = Collection::running_example();
        let mut idx = TifHintSlicing::build_with_params(&coll, 3, 4);
        let mut bf = BruteForce::build(coll.objects());
        let o = Object::new(8, 2, 13, vec![0, 1, 2]);
        idx.insert(&o);
        bf.insert(&o);
        assert!(idx.delete(coll.get(3)));
        bf.delete(coll.get(3));
        assert!(!idx.delete(coll.get(3)));
        for elems in [vec![0], vec![0, 2], vec![0, 1, 2]] {
            for (st, end) in [(0u64, 15u64), (5, 9), (1, 2)] {
                let q = TimeTravelQuery::new(st, end, elems.clone());
                let mut got = idx.query(&q);
                got.sort_unstable();
                assert_eq!(got, bf.answer(&q));
            }
        }
    }
}
