//! **tIF+HINT** (Section 3.1): the temporal inverted file with every
//! postings list organized as a HINT. Two query strategies:
//!
//! * [`IntersectStrategy::BinarySearch`] — Algorithm 3: each per-element
//!   HINT keeps its beneficial sorting; candidate membership is probed
//!   with binary searches while traversing bottom-up with endpoint checks;
//! * [`IntersectStrategy::MergeSort`] — Algorithm 4: divisions are sorted
//!   by object id and intersections run as merges, with no endpoint
//!   checks at all (candidates already qualify temporally).

use std::collections::HashMap;

use crate::collection::Collection;
use crate::freq::FreqTable;
use crate::index_trait::TemporalIrIndex;
use crate::types::{Object, ObjectId, TimeTravelQuery, Timestamp};
use tir_hint::{CheckMode, DivisionOrder, Hint, HintConfig, IntervalRecord};
use tir_invidx::planner::{Kernel, QueryScratch};
use tir_invidx::{live, raw};

/// How candidate sets are intersected with the per-element HINTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntersectStrategy {
    /// Algorithm 3: beneficial sorting + per-object binary search in the
    /// candidate set.
    BinarySearch,
    /// Algorithm 4: id-sorted divisions + merge intersections.
    MergeSort,
}

/// Configuration of [`TifHint`].
#[derive(Debug, Clone, Copy)]
pub struct TifHintConfig {
    /// Intersection strategy.
    pub strategy: IntersectStrategy,
    /// Levels (minus one) of every per-element HINT. Section 5.2 tunes
    /// `m = 10` for the binary-search variant and `m = 5` for merge-sort.
    pub m: u32,
}

impl TifHintConfig {
    /// The paper's tuned binary-search configuration (`m = 10`).
    pub fn binary_search() -> Self {
        TifHintConfig {
            strategy: IntersectStrategy::BinarySearch,
            m: 10,
        }
    }

    /// The paper's tuned merge-sort configuration (`m = 5`).
    pub fn merge_sort() -> Self {
        TifHintConfig {
            strategy: IntersectStrategy::MergeSort,
            m: 5,
        }
    }
}

/// The tIF+HINT index: one postings HINT `H[e]` per element.
#[derive(Debug, Clone)]
pub struct TifHint {
    hints: HashMap<u32, Hint>,
    freqs: FreqTable,
    domain_min: Timestamp,
    domain_max: Timestamp,
    config: TifHintConfig,
}

impl TifHint {
    /// Builds with the given strategy and `m`.
    pub fn build(coll: &Collection, config: TifHintConfig) -> Self {
        // Group interval records per element.
        let mut per_elem: HashMap<u32, Vec<IntervalRecord>> = HashMap::new();
        for o in coll.objects() {
            let rec = IntervalRecord {
                id: o.id,
                st: o.interval.st,
                end: o.interval.end,
            };
            for &e in &o.desc {
                per_elem.entry(e).or_default().push(rec);
            }
        }
        let d = coll.domain();
        let hint_cfg = Self::hint_config(config);
        let hints = per_elem
            .into_iter()
            .map(|(e, recs)| (e, Hint::build_with_domain(&recs, d.st, d.end, hint_cfg)))
            .collect();
        TifHint {
            hints,
            freqs: FreqTable::from_counts(coll.freqs()),
            domain_min: d.st,
            domain_max: d.end,
            config,
        }
    }

    /// Builds with the HINT cost model applied *per postings list* —
    /// Section 5.2 evaluates this option and finds it inferior to fixed
    /// small `m` (the model was designed for interval-only workloads);
    /// kept for the ablation benches.
    pub fn build_with_per_list_cost_model(coll: &Collection, strategy: IntersectStrategy) -> Self {
        let mut per_elem: HashMap<u32, Vec<IntervalRecord>> = HashMap::new();
        for o in coll.objects() {
            let rec = IntervalRecord {
                id: o.id,
                st: o.interval.st,
                end: o.interval.end,
            };
            for &e in &o.desc {
                per_elem.entry(e).or_default().push(rec);
            }
        }
        let d = coll.domain();
        let config = TifHintConfig { strategy, m: 0 };
        let base = Self::hint_config(config);
        let hints = per_elem
            .into_iter()
            .map(|(e, recs)| {
                let cfg = HintConfig { m: None, ..base };
                (e, Hint::build_with_domain(&recs, d.st, d.end, cfg))
            })
            .collect();
        TifHint {
            hints,
            freqs: FreqTable::from_counts(coll.freqs()),
            domain_min: d.st,
            domain_max: d.end,
            config,
        }
    }

    /// Rebuilds the index from canonical `(elem, id, st, end)` postings
    /// tuples and an explicit time domain — the snapshot-restore path.
    /// Unlike [`TifHint::build`], object ids need not be dense positions.
    /// Tuples must name live postings only (no tombstone bits).
    pub fn from_postings(
        tuples: &[(u32, u32, u64, u64)],
        domain: (Timestamp, Timestamp),
        config: TifHintConfig,
    ) -> Self {
        let mut per_elem: HashMap<u32, Vec<IntervalRecord>> = HashMap::new();
        let mut counts: Vec<u32> = Vec::new();
        for &(e, id, st, end) in tuples {
            per_elem
                .entry(e)
                .or_default()
                .push(IntervalRecord { id, st, end });
            if e as usize >= counts.len() {
                counts.resize(e as usize + 1, 0);
            }
            counts[e as usize] += 1;
        }
        let hint_cfg = Self::hint_config(config);
        let hints = per_elem
            .into_iter()
            .map(|(e, recs)| {
                (
                    e,
                    Hint::build_with_domain(&recs, domain.0, domain.1, hint_cfg),
                )
            })
            .collect();
        TifHint {
            hints,
            freqs: FreqTable::from_counts(&counts),
            domain_min: domain.0,
            domain_max: domain.1,
            config,
        }
    }

    /// The time domain the per-element HINTs were built over.
    pub fn domain(&self) -> (Timestamp, Timestamp) {
        (self.domain_min, self.domain_max)
    }

    /// The full configuration (strategy and `m`).
    pub fn config(&self) -> TifHintConfig {
        self.config
    }

    fn hint_config(config: TifHintConfig) -> HintConfig {
        match config.strategy {
            IntersectStrategy::BinarySearch => HintConfig {
                m: Some(config.m),
                order: DivisionOrder::Beneficial,
                storage_opt: true,
            },
            IntersectStrategy::MergeSort => HintConfig {
                m: Some(config.m),
                order: DivisionOrder::ById,
                storage_opt: true,
            },
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> IntersectStrategy {
        self.config.strategy
    }

    /// Total stored entries over all postings HINTs (with replication).
    pub fn num_entries(&self) -> usize {
        self.hints.values().map(Hint::num_entries).sum()
    }

    /// Document frequency of an element as tracked by the planner.
    pub fn freq(&self, e: u32) -> u32 {
        self.freqs.get(e)
    }

    /// Calls `f(element, hint)` for every per-element HINT, in
    /// unspecified element order (introspection for validators).
    pub fn for_each_hint(&self, mut f: impl FnMut(u32, &Hint)) {
        for (&e, h) in &self.hints {
            f(e, h);
        }
    }
}

impl TemporalIrIndex for TifHint {
    fn name(&self) -> &'static str {
        match self.config.strategy {
            IntersectStrategy::BinarySearch => "tIF+HINT(bs)",
            IntersectStrategy::MergeSort => "tIF+HINT(ms)",
        }
    }

    fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        self.query_into(q, &mut scratch, &mut out);
        out
    }

    fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<ObjectId>) {
        scratch.reset();
        self.freqs.plan_into(&q.elems, &mut scratch.plan);
        if scratch.plan.is_empty() {
            return;
        }
        // Candidates: a plain HINT range query on H[e*].
        let first = scratch.plan[0];
        let Some(h0) = self.hints.get(&first) else {
            scratch.take_into(out);
            return;
        };
        let (q_st, q_end) = (q.interval.st, q.interval.end);
        h0.range_query_into(q_st, q_end, &mut scratch.cands);
        scratch.cands.iter_mut().for_each(|id| *id = raw(*id));
        scratch.note(Kernel::Merge, scratch.cands.len() as u64);

        // Remaining elements: traverse each relevant division of H[e].
        // Algorithm 3 probes the candidate set with take-once semantics
        // (replacing its binary searches and the candidate sort they
        // required); Algorithm 4 keeps its merge-marking pass over the
        // id-sorted divisions, which only needs the seed sorted once.
        if matches!(self.config.strategy, IntersectStrategy::MergeSort) {
            scratch.cands.sort_unstable();
        }
        for pi in 1..scratch.plan.len() {
            if scratch.cands.is_empty() {
                break;
            }
            let e = scratch.plan[pi];
            let mut cands = std::mem::take(&mut scratch.cands);
            match self.config.strategy {
                // Algorithm 3: beneficial sorting + endpoint checks.
                IntersectStrategy::BinarySearch => {
                    scratch.load_candidates(&cands, 0);
                    cands.clear();
                    let mut probed = 0u64;
                    if let Some(h) = self.hints.get(&e) {
                        h.visit_relevant(q_st, q_end, |view, mode| {
                            probed += view.ids.len() as u64;
                            for (i, &id) in view.ids.iter().enumerate() {
                                if !live(id) {
                                    continue;
                                }
                                let ok = match mode {
                                    CheckMode::None => true,
                                    CheckMode::Start => view.sts[i] <= q_end,
                                    CheckMode::End => view.ends[i] >= q_st,
                                    CheckMode::Both => view.sts[i] <= q_end && view.ends[i] >= q_st,
                                };
                                if ok && scratch.probe_take(id) {
                                    cands.push(id);
                                }
                            }
                        });
                    }
                    scratch.note_probed(probed);
                    scratch.end_probe();
                }
                // Algorithm 4: merge-mark against id-sorted divisions, no
                // temporal checks (candidates already overlap the query).
                IntersectStrategy::MergeSort => {
                    scratch.begin_mark(cands.len());
                    if let Some(h) = self.hints.get(&e) {
                        h.visit_relevant(q_st, q_end, |view, _mode| {
                            scratch.mark(&cands, view.ids);
                        });
                    }
                    scratch.finish_mark(&mut cands);
                }
            }
            scratch.cands = cands;
        }
        scratch.take_into(out);
    }

    fn insert(&mut self, o: &Object) {
        let rec = IntervalRecord {
            id: o.id,
            st: o.interval.st,
            end: o.interval.end,
        };
        let cfg = Self::hint_config(self.config);
        for &e in &o.desc {
            self.hints
                .entry(e)
                .or_insert_with(|| {
                    Hint::build_with_domain(&[], self.domain_min, self.domain_max, cfg)
                })
                .insert(&rec);
            self.freqs.bump(e);
        }
    }

    fn delete(&mut self, o: &Object) -> bool {
        let rec = IntervalRecord {
            id: o.id,
            st: o.interval.st,
            end: o.interval.end,
        };
        let mut any = false;
        for &e in &o.desc {
            if let Some(h) = self.hints.get_mut(&e) {
                if h.delete(&rec) {
                    self.freqs.drop_one(e);
                    any = true;
                }
            }
        }
        any
    }

    fn size_bytes(&self) -> usize {
        self.hints
            .values()
            .map(|h| h.size_bytes() + 16)
            .sum::<usize>()
            + self.freqs.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BruteForce;

    fn configs() -> Vec<TifHintConfig> {
        vec![
            TifHintConfig {
                strategy: IntersectStrategy::BinarySearch,
                m: 3,
            },
            TifHintConfig {
                strategy: IntersectStrategy::BinarySearch,
                m: 10,
            },
            TifHintConfig {
                strategy: IntersectStrategy::MergeSort,
                m: 3,
            },
            TifHintConfig {
                strategy: IntersectStrategy::MergeSort,
                m: 5,
            },
        ]
    }

    #[test]
    fn running_example_both_strategies() {
        let coll = Collection::running_example();
        for cfg in configs() {
            let idx = TifHint::build(&coll, cfg);
            let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
            let mut got = idx.query(&q);
            got.sort_unstable();
            assert_eq!(got, vec![1, 3, 6], "{cfg:?}");
        }
    }

    #[test]
    fn matches_oracle_on_example_grid() {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        for cfg in configs() {
            let idx = TifHint::build(&coll, cfg);
            for st in 0..16u64 {
                for end in st..16 {
                    for elems in [vec![0], vec![2], vec![0, 2], vec![0, 1, 2], vec![1, 2]] {
                        let q = TimeTravelQuery::new(st, end, elems);
                        let mut got = idx.query(&q);
                        let n = got.len();
                        got.sort_unstable();
                        got.dedup();
                        assert_eq!(n, got.len(), "duplicates {cfg:?} q={q:?}");
                        assert_eq!(got, bf.answer(&q), "{cfg:?} q={q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn updates_match_oracle() {
        let coll = Collection::running_example();
        for cfg in configs() {
            let mut idx = TifHint::build(&coll, cfg);
            let mut bf = BruteForce::build(coll.objects());
            let o = Object::new(8, 3, 12, vec![0, 2]);
            idx.insert(&o);
            bf.insert(&o);
            assert!(idx.delete(coll.get(6)), "{cfg:?}");
            bf.delete(coll.get(6));
            assert!(!idx.delete(coll.get(6)));
            for (st, end) in [(0u64, 15u64), (5, 9), (12, 15)] {
                let q = TimeTravelQuery::new(st, end, vec![0, 2]);
                let mut got = idx.query(&q);
                got.sort_unstable();
                assert_eq!(got, bf.answer(&q), "{cfg:?}");
            }
        }
    }

    #[test]
    fn replication_visible_in_entry_count() {
        let coll = Collection::running_example();
        let idx = TifHint::build(
            &coll,
            TifHintConfig {
                strategy: IntersectStrategy::MergeSort,
                m: 3,
            },
        );
        let raw_postings: usize = coll.objects().iter().map(|o| o.desc.len()).sum();
        assert!(idx.num_entries() >= raw_postings);
    }
}
