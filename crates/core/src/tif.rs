//! The base temporal inverted file **tIF** (Section 2.2, Algorithm 1):
//! one time-aware postings list per element, no temporal indexing.

use std::collections::HashMap;

use crate::collection::Collection;
use crate::freq::FreqTable;
use crate::index_trait::TemporalIrIndex;
use crate::postings::{build_lists, TemporalList};
use crate::types::{Object, ObjectId, TimeTravelQuery};
use tir_invidx::planner::{Kernel, Postings, QueryScratch};
use tir_invidx::{ContainerConfig, HybridPostings};

/// The base temporal inverted file.
///
/// Query evaluation follows Algorithm 1: scan the postings list of the
/// least frequent query element filtering by the temporal predicate, then
/// intersect the candidate set with each remaining list in ascending
/// frequency order. The non-seed intersections run against a
/// [`HybridPostings`] sidecar — dense elements as bitmaps, sparse ones as
/// sorted arrays — so the conjunction planner can pick bitmap kernels.
#[derive(Debug, Clone, Default)]
pub struct Tif {
    lists: HashMap<u32, TemporalList>,
    hybrid: HybridPostings,
    freqs: FreqTable,
}

impl Tif {
    /// Builds the index over a collection.
    pub fn build(coll: &Collection) -> Self {
        let lists = build_lists(coll.objects());
        let universe = coll
            .objects()
            .iter()
            .map(|o| o.id.saturating_add(1))
            .max()
            .unwrap_or(0);
        let hybrid = HybridPostings::from_lists(
            lists.iter().map(|(&e, l)| (e, l.ids.as_slice())),
            universe,
            ContainerConfig::default(),
        );
        Tif {
            lists,
            hybrid,
            freqs: FreqTable::from_counts(coll.freqs()),
        }
    }

    /// Rebuilds the index from canonical `(elem, id, st, end)` postings
    /// tuples — the snapshot-restore path. Unlike [`Tif::build`], object
    /// ids need not be dense positions: tuples may describe any surviving
    /// subset after inserts and deletes. Tuples must name live postings
    /// only (no tombstone bits) and be sorted by `(elem, id)`.
    pub fn from_postings(tuples: &[(u32, u32, u64, u64)]) -> Self {
        let mut lists: HashMap<u32, TemporalList> = HashMap::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut universe = 0u32;
        for &(e, id, st, end) in tuples {
            lists.entry(e).or_default().insert(id, st, end);
            if e as usize >= counts.len() {
                counts.resize(e as usize + 1, 0);
            }
            counts[e as usize] += 1;
            universe = universe.max(id.saturating_add(1));
        }
        let hybrid = HybridPostings::from_lists(
            lists.iter().map(|(&e, l)| (e, l.ids.as_slice())),
            universe,
            ContainerConfig::default(),
        );
        Tif {
            lists,
            hybrid,
            freqs: FreqTable::from_counts(&counts),
        }
    }

    /// The hybrid container directory backing non-seed intersections
    /// (introspection for validators).
    pub fn containers(&self) -> &HybridPostings {
        &self.hybrid
    }

    /// The postings list of an element, if any object contains it.
    pub fn list(&self, e: u32) -> Option<&TemporalList> {
        self.lists.get(&e)
    }

    /// Total number of stored postings (with replication — none here).
    pub fn num_postings(&self) -> usize {
        self.lists.values().map(TemporalList::len).sum()
    }

    /// Document frequency of an element as tracked by the planner.
    pub fn freq(&self, e: u32) -> u32 {
        self.freqs.get(e)
    }

    /// Calls `f(element, list)` for every postings list, in unspecified
    /// element order (introspection for validators).
    pub fn for_each_list(&self, mut f: impl FnMut(u32, &TemporalList)) {
        for (&e, list) in &self.lists {
            f(e, list);
        }
    }
}

impl TemporalIrIndex for Tif {
    fn name(&self) -> &'static str {
        "tIF"
    }

    fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        self.query_into(q, &mut scratch, &mut out);
        out
    }

    fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<ObjectId>) {
        scratch.reset();
        self.freqs.plan_into(&q.elems, &mut scratch.plan);
        if scratch.plan.is_empty() {
            return;
        }
        let first = scratch.plan[0];
        if let Some(list) = self.lists.get(&first) {
            let scanned = list.seed_overlap_into(q.interval.st, q.interval.end, &mut scratch.cands);
            scratch.note(Kernel::Merge, scanned as u64);
        }
        for i in 1..scratch.plan.len() {
            if scratch.is_empty() {
                break;
            }
            let e = scratch.plan[i];
            match self.hybrid.get(e) {
                Some(c) => scratch.intersect(Postings::Container(c)),
                None => scratch.intersect(Postings::Ids(&[])),
            }
        }
        scratch.take_into(out);
    }

    fn insert(&mut self, o: &Object) {
        for &e in &o.desc {
            self.lists
                .entry(e)
                .or_default()
                .insert(o.id, o.interval.st, o.interval.end);
            self.hybrid.insert(e, o.id);
            self.freqs.bump(e);
        }
    }

    fn delete(&mut self, o: &Object) -> bool {
        let mut any = false;
        for &e in &o.desc {
            if let Some(list) = self.lists.get_mut(&e) {
                if list.tombstone(o.id) {
                    self.hybrid.tombstone(e, o.id);
                    self.freqs.drop_one(e);
                    any = true;
                }
            }
        }
        any
    }

    fn size_bytes(&self) -> usize {
        self.lists
            .values()
            .map(|l| l.size_bytes() + std::mem::size_of::<TemporalList>() + 16)
            .sum::<usize>()
            + self.hybrid.size_bytes()
            + self.freqs.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BruteForce;

    #[test]
    fn running_example() {
        let coll = Collection::running_example();
        let tif = Tif::build(&coll);
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let mut got = tif.query(&q);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 6]);
    }

    #[test]
    fn matches_oracle_on_example_grid() {
        let coll = Collection::running_example();
        let tif = Tif::build(&coll);
        let bf = BruteForce::build(coll.objects());
        for st in 0..16u64 {
            for end in st..16 {
                for elems in [
                    vec![0],
                    vec![1],
                    vec![2],
                    vec![0, 2],
                    vec![0, 1, 2],
                    vec![5],
                ] {
                    let q = TimeTravelQuery::new(st, end, elems);
                    let mut got = tif.query(&q);
                    got.sort_unstable();
                    assert_eq!(got, bf.answer(&q), "q={q:?}");
                }
            }
        }
    }

    #[test]
    fn updates_keep_answers_correct() {
        let coll = Collection::running_example();
        let mut tif = Tif::build(&coll);
        let mut bf = BruteForce::build(coll.objects());
        let o = Object::new(8, 5, 9, vec![0, 2]);
        tif.insert(&o);
        bf.insert(&o);
        assert!(tif.delete(coll.get(3)));
        assert!(bf.delete(coll.get(3)));
        assert!(!tif.delete(coll.get(3)));
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let mut got = tif.query(&q);
        got.sort_unstable();
        assert_eq!(got, bf.answer(&q));
        assert_eq!(got, vec![1, 6, 8]);
    }

    #[test]
    fn empty_and_unknown_elements() {
        let coll = Collection::running_example();
        let tif = Tif::build(&coll);
        assert!(tif.query(&TimeTravelQuery::new(0, 15, vec![])).is_empty());
        assert!(tif.query(&TimeTravelQuery::new(0, 15, vec![42])).is_empty());
        assert!(tif
            .query(&TimeTravelQuery::new(0, 15, vec![0, 42]))
            .is_empty());
    }
}
