//! Property tests: every temporal-IR index must agree with the
//! brute-force oracle on arbitrary collections, queries, and update
//! sequences — the central correctness claim of the library.

use proptest::prelude::*;
use tir_core::prelude::*;

const DOMAIN: u64 = 2000;
const DICT: u32 = 12;

fn arb_collection(max_objects: usize) -> impl Strategy<Value = Collection> {
    prop::collection::vec(
        (
            0..DOMAIN,
            0..DOMAIN,
            prop::collection::btree_set(0..DICT, 1..5),
        ),
        1..max_objects,
    )
    .prop_map(|raw| {
        let objects = raw
            .into_iter()
            .enumerate()
            .map(|(i, (a, b, desc))| {
                Object::new(i as u32, a.min(b), a.max(b), desc.into_iter().collect())
            })
            .collect();
        Collection::new(objects)
    })
}

fn arb_query() -> impl Strategy<Value = TimeTravelQuery> {
    (
        0..DOMAIN + 100,
        0..DOMAIN + 100,
        prop::collection::btree_set(0..DICT + 2, 1..4),
    )
        .prop_map(|(a, b, elems)| {
            TimeTravelQuery::new(a.min(b), a.max(b), elems.into_iter().collect())
        })
}

fn all_indexes(coll: &Collection) -> Vec<Box<dyn TemporalIrIndex>> {
    vec![
        Box::new(Tif::build(coll)),
        Box::new(TifSlicing::build_with_slices(coll, 7)),
        Box::new(TifSharding::build(coll)),
        Box::new(TifHint::build(
            coll,
            TifHintConfig {
                strategy: IntersectStrategy::BinarySearch,
                m: 6,
            },
        )),
        Box::new(TifHint::build(
            coll,
            TifHintConfig {
                strategy: IntersectStrategy::MergeSort,
                m: 4,
            },
        )),
        Box::new(TifHintSlicing::build_with_params(coll, 4, 5)),
        Box::new(IrHintPerf::build_with_m(coll, 6)),
        Box::new(IrHintSize::build_with_m(coll, 6)),
    ]
}

fn check(
    index: &dyn TemporalIrIndex,
    oracle: &BruteForce,
    q: &TimeTravelQuery,
) -> Result<(), TestCaseError> {
    let mut got = index.query(q);
    let n = got.len();
    got.sort_unstable();
    got.dedup();
    prop_assert_eq!(
        n,
        got.len(),
        "{} returned duplicates for {:?}",
        index.name(),
        q
    );
    prop_assert_eq!(
        got,
        oracle.answer(q),
        "{} wrong answer for {:?}",
        index.name(),
        q
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_index_matches_oracle(
        coll in arb_collection(60),
        queries in prop::collection::vec(arb_query(), 1..12),
    ) {
        let oracle = BruteForce::build(coll.objects());
        for index in all_indexes(&coll) {
            for q in &queries {
                check(index.as_ref(), &oracle, q)?;
            }
        }
    }

    #[test]
    fn every_index_survives_update_sequences(
        coll in arb_collection(40),
        extra in prop::collection::vec(
            (0..DOMAIN, 0..DOMAIN, prop::collection::btree_set(0..DICT, 1..4)),
            0..15,
        ),
        delete_every in 2usize..5,
        queries in prop::collection::vec(arb_query(), 1..8),
    ) {
        let mut oracle = BruteForce::build(coll.objects());
        let mut indexes = all_indexes(&coll);
        // Interleave inserts (fresh ids) and deletes of existing objects.
        let base = coll.len() as u32;
        for (i, (a, b, desc)) in extra.iter().enumerate() {
            let o = Object::new(base + i as u32, *a.min(b), *a.max(b), desc.iter().copied().collect());
            oracle.insert(&o);
            for idx in indexes.iter_mut() {
                idx.insert(&o);
            }
            if i % delete_every == 0 {
                let victim = coll.get((i as u32 * 7) % base);
                let expect = oracle.delete(victim);
                for idx in indexes.iter_mut() {
                    prop_assert_eq!(idx.delete(victim), expect, "{} delete disagrees", idx.name());
                }
            }
        }
        for idx in &indexes {
            for q in &queries {
                check(idx.as_ref(), &oracle, q)?;
            }
        }
    }

    #[test]
    fn size_accounting_is_positive_and_ordered(coll in arb_collection(50)) {
        let perf = IrHintPerf::build_with_m(&coll, 5);
        let size = IrHintSize::build_with_m(&coll, 5);
        prop_assert!(perf.size_bytes() > 0);
        prop_assert!(size.size_bytes() > 0);
    }
}
