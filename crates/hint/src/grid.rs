//! A 1D-grid interval index: the structure underlying the Slicing
//! technique of Berberich et al. and the classic flat baseline HINT is
//! compared against.
//!
//! The domain is divided into `k` equal-width cells; every interval is
//! replicated into each cell it overlaps. Duplicate results are avoided
//! with the *reference value* method of Dittrich & Seeger: an interval is
//! reported only from the cell containing `max(i.st, q.st)`.

use crate::IntervalRecord;

/// Flat 1D-grid over `[min, max]` with `k` cells.
#[derive(Debug, Clone)]
pub struct Grid1D {
    min: u64,
    max: u64,
    k: u32,
    cells: Vec<Vec<IntervalRecord>>,
    live: usize,
}

impl Grid1D {
    /// Builds a grid with `k >= 1` cells over the raw domain of `records`
    /// (or `[0, 0]` when empty).
    pub fn build(records: &[IntervalRecord], k: u32) -> Self {
        let (min, max) = records.iter().fold((u64::MAX, 0u64), |(lo, hi), r| {
            (lo.min(r.st), hi.max(r.end))
        });
        let (min, max) = if records.is_empty() {
            (0, 0)
        } else {
            (min, max)
        };
        Self::build_with_domain(records, min, max, k)
    }

    /// Builds a grid with an explicit domain.
    pub fn build_with_domain(records: &[IntervalRecord], min: u64, max: u64, k: u32) -> Self {
        assert!(k >= 1);
        let mut grid = Grid1D {
            min,
            max: max.max(min),
            k,
            cells: vec![Vec::new(); k as usize],
            live: 0,
        };
        for r in records {
            grid.insert(r);
        }
        grid
    }

    /// Cell index of a raw timestamp (clamped to the domain).
    #[inline]
    pub fn cell_of(&self, t: u64) -> u32 {
        let t = t.clamp(self.min, self.max);
        let span = (self.max - self.min) as u128 + 1;
        // analyze:allow(unguarded-cast): quotient is < k, and k is already a u32
        (((t - self.min) as u128 * self.k as u128) / span) as u32
    }

    /// Inserts an interval into every cell it overlaps.
    pub fn insert(&mut self, r: &IntervalRecord) {
        assert!(r.st <= r.end);
        let lo = self.cell_of(r.st);
        let hi = self.cell_of(r.end);
        for c in lo..=hi {
            self.cells[c as usize].push(*r);
        }
        self.live += 1;
    }

    /// Logically deletes an interval by removing all its copies.
    pub fn delete(&mut self, r: &IntervalRecord) -> bool {
        let lo = self.cell_of(r.st);
        let hi = self.cell_of(r.end);
        let mut found = false;
        for c in lo..=hi {
            let cell = &mut self.cells[c as usize];
            if let Some(pos) = cell.iter().position(|x| x.id == r.id) {
                cell.swap_remove(pos);
                found = true;
            }
        }
        if found {
            self.live -= 1;
        }
        found
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no interval is stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total stored entries counting replication.
    pub fn num_entries(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<IntervalRecord>())
            .sum::<usize>()
            + self.cells.capacity() * std::mem::size_of::<Vec<IntervalRecord>>()
    }

    /// The raw contents of one cell (replicated entries included).
    pub fn cell_contents(&self, c: u32) -> &[IntervalRecord] {
        self.cells.get(c as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of grid cells.
    pub fn num_cells(&self) -> u32 {
        self.k
    }

    /// All ids overlapping `[q_st, q_end]`, duplicate-free via the
    /// reference value method.
    pub fn range_query(&self, q_st: u64, q_end: u64) -> Vec<u32> {
        assert!(q_st <= q_end);
        let mut out = Vec::new();
        let lo = self.cell_of(q_st);
        let hi = self.cell_of(q_end);
        for c in lo..=hi {
            for r in &self.cells[c as usize] {
                if r.st <= q_end && r.end >= q_st {
                    // Reference value: report from the cell holding
                    // max(i.st, q.st) only.
                    let refv = r.st.max(q_st);
                    if self.cell_of(refv) == c {
                        out.push(r.id);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_overlap;

    fn sample() -> Vec<IntervalRecord> {
        vec![
            IntervalRecord {
                id: 0,
                st: 0,
                end: 30,
            },
            IntervalRecord {
                id: 1,
                st: 5,
                end: 6,
            },
            IntervalRecord {
                id: 2,
                st: 10,
                end: 20,
            },
            IntervalRecord {
                id: 3,
                st: 29,
                end: 30,
            },
            IntervalRecord {
                id: 4,
                st: 15,
                end: 15,
            },
        ]
    }

    #[test]
    fn matches_oracle_for_all_k() {
        let recs = sample();
        for k in [1u32, 2, 3, 7, 31] {
            let g = Grid1D::build(&recs, k);
            for q_st in 0..=31u64 {
                for q_end in q_st..=31 {
                    let mut got = g.range_query(q_st, q_end);
                    let n = got.len();
                    got.sort_unstable();
                    got.dedup();
                    assert_eq!(n, got.len(), "duplicates k={k} [{q_st},{q_end}]");
                    assert_eq!(got, brute_force_overlap(&recs, q_st, q_end), "k={k}");
                }
            }
        }
    }

    #[test]
    fn delete_removes_all_copies() {
        let recs = sample();
        let mut g = Grid1D::build(&recs, 8);
        assert!(g.delete(&recs[0]));
        assert!(!g.delete(&recs[0]));
        assert!(!g.range_query(0, 31).contains(&0));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn replication_grows_with_k() {
        let recs = sample();
        let g1 = Grid1D::build(&recs, 1);
        let g16 = Grid1D::build(&recs, 16);
        assert!(g16.num_entries() > g1.num_entries());
        assert_eq!(g1.num_entries(), recs.len());
    }
}
