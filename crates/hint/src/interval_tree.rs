//! A static centered interval tree (Edelsbrunner), used as a classical
//! baseline for the interval-index micro-benchmarks.
//!
//! Every node stores the intervals that contain the node's center, sorted
//! twice (by start ascending and by end descending) so that a range query
//! scans only qualifying prefixes.

use crate::IntervalRecord;

#[derive(Debug, Clone)]
struct Node {
    center: u64,
    by_st: Vec<IntervalRecord>,
    by_end: Vec<IntervalRecord>,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

/// Static centered interval tree.
#[derive(Debug, Clone)]
pub struct IntervalTree {
    root: Option<Box<Node>>,
    len: usize,
}

impl IntervalTree {
    /// Builds the tree; `O(n log n)`.
    pub fn build(records: &[IntervalRecord]) -> Self {
        let mut recs = records.to_vec();
        let len = recs.len();
        let root = build_node(&mut recs);
        IntervalTree { root, len }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        fn node_size(n: &Node) -> usize {
            std::mem::size_of::<Node>()
                + (n.by_st.capacity() + n.by_end.capacity()) * std::mem::size_of::<IntervalRecord>()
                + n.left.as_deref().map_or(0, node_size)
                + n.right.as_deref().map_or(0, node_size)
        }
        self.root.as_deref().map_or(0, node_size)
    }

    /// Visits every node with its center, both sorted copies, and the
    /// open ancestor bounds `(lo, hi)` the node's intervals must respect
    /// (`lo < i.st` for right subtrees, `i.end < hi` for left ones).
    /// Introspection for validators.
    pub fn visit_nodes(
        &self,
        mut f: impl FnMut(u64, &[IntervalRecord], &[IntervalRecord], Option<u64>, Option<u64>),
    ) {
        fn walk(
            n: &Node,
            lo: Option<u64>,
            hi: Option<u64>,
            f: &mut impl FnMut(u64, &[IntervalRecord], &[IntervalRecord], Option<u64>, Option<u64>),
        ) {
            f(n.center, &n.by_st, &n.by_end, lo, hi);
            if let Some(l) = &n.left {
                walk(l, lo, Some(n.center), f);
            }
            if let Some(r) = &n.right {
                walk(r, Some(n.center), hi, f);
            }
        }
        if let Some(root) = &self.root {
            walk(root, None, None, &mut f);
        }
    }

    /// All ids of intervals overlapping `[q_st, q_end]`.
    pub fn range_query(&self, q_st: u64, q_end: u64) -> Vec<u32> {
        assert!(q_st <= q_end);
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            query_node(root, q_st, q_end, &mut out);
        }
        out
    }
}

fn build_node(recs: &mut [IntervalRecord]) -> Option<Box<Node>> {
    if recs.is_empty() {
        return None;
    }
    // Center: median of interval starts — good enough for balance.
    let mid = recs.len() / 2;
    recs.sort_unstable_by_key(|r| r.st);
    let center = recs[mid].st;

    let mut here = Vec::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for r in recs.iter() {
        if r.end < center {
            left.push(*r);
        } else if r.st > center {
            right.push(*r);
        } else {
            here.push(*r);
        }
    }
    let mut by_st = here.clone();
    by_st.sort_unstable_by_key(|r| r.st);
    let mut by_end = here;
    by_end.sort_unstable_by_key(|r| std::cmp::Reverse(r.end));
    Some(Box::new(Node {
        center,
        by_st,
        by_end,
        left: build_node(&mut left),
        right: build_node(&mut right),
    }))
}

fn query_node(node: &Node, q_st: u64, q_end: u64, out: &mut Vec<u32>) {
    if q_end < node.center {
        // Intervals at this node all contain center > q_end, so only those
        // starting at or before q_end qualify.
        for r in &node.by_st {
            if r.st > q_end {
                break;
            }
            out.push(r.id);
        }
        if let Some(l) = &node.left {
            query_node(l, q_st, q_end, out);
        }
    } else if q_st > node.center {
        for r in &node.by_end {
            if r.end < q_st {
                break;
            }
            out.push(r.id);
        }
        if let Some(r) = &node.right {
            query_node(r, q_st, q_end, out);
        }
    } else {
        // Query contains the center: everything here overlaps.
        out.extend(node.by_st.iter().map(|r| r.id));
        if let Some(l) = &node.left {
            query_node(l, q_st, q_end, out);
        }
        if let Some(r) = &node.right {
            query_node(r, q_st, q_end, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_overlap;

    #[test]
    fn matches_oracle() {
        let recs: Vec<IntervalRecord> = (0..200u32)
            .map(|i| {
                let st = ((i as u64) * 37) % 500;
                IntervalRecord {
                    id: i,
                    st,
                    end: st + (i as u64 % 40),
                }
            })
            .collect();
        let tree = IntervalTree::build(&recs);
        for q_st in (0..550u64).step_by(7) {
            for w in [0u64, 1, 13, 100] {
                let q_end = q_st + w;
                let mut got = tree.range_query(q_st, q_end);
                got.sort_unstable();
                got.dedup();
                assert_eq!(got, brute_force_overlap(&recs, q_st, q_end));
            }
        }
    }

    #[test]
    fn empty_tree() {
        let t = IntervalTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.range_query(0, 10).is_empty());
    }

    #[test]
    fn no_duplicates() {
        let recs: Vec<IntervalRecord> = (0..100u32)
            .map(|i| IntervalRecord {
                id: i,
                st: 10,
                end: 20,
            })
            .collect();
        let tree = IntervalTree::build(&recs);
        let mut got = tree.range_query(15, 15);
        let n = got.len();
        got.sort_unstable();
        got.dedup();
        assert_eq!(n, got.len());
        assert_eq!(n, 100);
    }
}
