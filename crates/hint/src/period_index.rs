//! A period index (Behrend et al.) — the duration-aware structure of
//! Section 6.2: the domain is cut into coarse buckets and every bucket
//! organizes its intervals by *duration class*, so range-duration queries
//! prune whole classes.
//!
//! This is the non-learned variant: uniform buckets, power-of-two
//! duration classes, replication into every overlapped bucket with
//! reference-value de-duplication.

use crate::IntervalRecord;

/// Period index over closed `u64` intervals.
#[derive(Debug, Clone)]
pub struct PeriodIndex {
    min: u64,
    max: u64,
    num_buckets: u32,
    /// `buckets[b][c]` = intervals overlapping bucket `b` with duration
    /// class `c` (`c = floor(log2(duration))`).
    buckets: Vec<Vec<Vec<IntervalRecord>>>,
    len: usize,
}

const NUM_CLASSES: usize = 64;

#[inline]
fn class_of(duration: u64) -> usize {
    debug_assert!(duration >= 1);
    (63 - duration.leading_zeros()) as usize
}

impl PeriodIndex {
    /// Builds with `num_buckets >= 1` uniform buckets.
    pub fn build(records: &[IntervalRecord], num_buckets: u32) -> Self {
        assert!(num_buckets >= 1);
        let (min, max) = records.iter().fold((u64::MAX, 0u64), |(lo, hi), r| {
            (lo.min(r.st), hi.max(r.end))
        });
        let (min, max) = if records.is_empty() {
            (0, 0)
        } else {
            (min, max)
        };
        let mut idx = PeriodIndex {
            min,
            max,
            num_buckets,
            buckets: vec![Vec::new(); num_buckets as usize],
            len: 0,
        };
        for r in records {
            idx.insert(r);
        }
        idx
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> u32 {
        let t = t.clamp(self.min, self.max);
        let span = (self.max - self.min) as u128 + 1;
        // analyze:allow(unguarded-cast): quotient is < num_buckets, already a u32
        (((t - self.min) as u128 * self.num_buckets as u128) / span) as u32
    }

    /// Adds one interval (replicated into each overlapped bucket).
    pub fn insert(&mut self, r: &IntervalRecord) {
        let class = class_of(r.end - r.st + 1);
        for b in self.bucket_of(r.st)..=self.bucket_of(r.end) {
            let bucket = &mut self.buckets[b as usize];
            if bucket.len() <= class {
                bucket.resize_with(class + 1, Vec::new);
            }
            bucket[class].push(*r);
        }
        self.len += 1;
    }

    /// All ids overlapping `[q_st, q_end]`.
    pub fn range_query(&self, q_st: u64, q_end: u64) -> Vec<u32> {
        self.range_duration_query(q_st, q_end, 1, u64::MAX)
    }

    /// All ids overlapping `[q_st, q_end]` whose duration lies in
    /// `[d_min, d_max]` — the query type this index specializes in:
    /// duration classes outside the band are skipped wholesale.
    pub fn range_duration_query(&self, q_st: u64, q_end: u64, d_min: u64, d_max: u64) -> Vec<u32> {
        assert!(q_st <= q_end);
        assert!(d_min >= 1 && d_min <= d_max);
        let c_lo = class_of(d_min);
        let c_hi = if d_max == u64::MAX {
            NUM_CLASSES - 1
        } else {
            class_of(d_max)
        };
        let mut out = Vec::new();
        for b in self.bucket_of(q_st)..=self.bucket_of(q_end) {
            let bucket = &self.buckets[b as usize];
            if bucket.len() <= c_lo {
                continue;
            }
            for class in &bucket[c_lo..=c_hi.min(bucket.len() - 1)] {
                for r in class {
                    let dur = r.end - r.st + 1;
                    if r.st <= q_end && r.end >= q_st && dur >= d_min && dur <= d_max {
                        // Reference value de-duplication.
                        if self.bucket_of(r.st.max(q_st)) == b {
                            out.push(r.id);
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.buckets
            .iter()
            .flat_map(|b| b.iter())
            .map(|c| c.capacity() * std::mem::size_of::<IntervalRecord>() + 24)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_overlap;

    fn sample() -> Vec<IntervalRecord> {
        (0..400u32)
            .map(|i| {
                let st = (i as u64 * 48271) % 8_000;
                let len = 1 + (i as u64 * 31) % 512;
                IntervalRecord {
                    id: i,
                    st,
                    end: st + len - 1,
                }
            })
            .collect()
    }

    #[test]
    fn range_matches_oracle() {
        let recs = sample();
        for k in [1u32, 4, 32] {
            let idx = PeriodIndex::build(&recs, k);
            for q_st in (0..8_600u64).step_by(331) {
                for w in [0u64, 10, 500] {
                    let mut got = idx.range_query(q_st, q_st + w);
                    let n = got.len();
                    got.sort_unstable();
                    got.dedup();
                    assert_eq!(n, got.len(), "duplicates k={k}");
                    assert_eq!(got, brute_force_overlap(&recs, q_st, q_st + w), "k={k}");
                }
            }
        }
    }

    #[test]
    fn duration_band_matches_filtered_oracle() {
        let recs = sample();
        let idx = PeriodIndex::build(&recs, 16);
        for (d_min, d_max) in [(1u64, 4u64), (5, 100), (100, u64::MAX), (1, u64::MAX)] {
            for q_st in (0..8_000u64).step_by(977) {
                let q_end = q_st + 300;
                let mut got = idx.range_duration_query(q_st, q_end, d_min, d_max);
                got.sort_unstable();
                let want: Vec<u32> = brute_force_overlap(&recs, q_st, q_end)
                    .into_iter()
                    .filter(|&id| {
                        let r = recs[id as usize];
                        let dur = r.end - r.st + 1;
                        dur >= d_min && dur <= d_max
                    })
                    .collect();
                assert_eq!(got, want, "band [{d_min},{d_max}] q=[{q_st},{q_end}]");
            }
        }
    }

    #[test]
    fn duration_classes_prune() {
        // All intervals short: a long-duration band must touch nothing.
        let recs: Vec<IntervalRecord> = (0..50u32)
            .map(|i| IntervalRecord {
                id: i,
                st: i as u64,
                end: i as u64 + 1,
            })
            .collect();
        let idx = PeriodIndex::build(&recs, 4);
        assert!(idx.range_duration_query(0, 100, 1000, u64::MAX).is_empty());
        assert_eq!(idx.range_duration_query(0, 100, 1, 2).len(), 50);
    }

    #[test]
    fn empty_index() {
        let idx = PeriodIndex::build(&[], 8);
        assert!(idx.is_empty());
        assert!(idx.range_query(0, 5).is_empty());
    }
}
