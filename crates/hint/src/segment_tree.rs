//! A static segment tree (de Berg et al.) — the classic structure for
//! *stabbing* queries cited in Section 6.2 of the temporal-IR paper.
//!
//! The domain is cut into elementary slabs at the distinct interval
//! endpoints; every interval is stored at the `O(log n)` canonical nodes
//! whose slab range it fully covers. A stabbing query walks one
//! root-to-leaf path and reports everything stored on it; each interval
//! appears at most once on any such path, so no de-duplication is needed.

use crate::IntervalRecord;

/// Static segment tree over closed `u64` intervals, answering stabbing
/// queries (`which intervals contain t?`).
#[derive(Debug, Clone)]
pub struct SegmentTree {
    /// Sorted slab boundaries; slab `i` covers `[bounds[i], bounds[i+1])`,
    /// the last slab is `[bounds[n-1], ∞)`.
    bounds: Vec<u64>,
    /// Heap-layout nodes (1-based); each holds the ids assigned to it.
    nodes: Vec<Vec<u32>>,
    /// Number of leaves (power of two).
    leaves: usize,
    len: usize,
}

impl SegmentTree {
    /// Builds the tree; `O(n log n)` space and time.
    pub fn build(records: &[IntervalRecord]) -> Self {
        let mut bounds: Vec<u64> = Vec::with_capacity(records.len() * 2 + 1);
        bounds.push(0);
        for r in records {
            bounds.push(r.st);
            // A closed interval stops containing points at end + 1.
            bounds.push(r.end.saturating_add(1));
        }
        bounds.sort_unstable();
        bounds.dedup();
        let leaves = bounds.len().next_power_of_two();
        let mut tree = SegmentTree {
            bounds,
            nodes: vec![Vec::new(); leaves * 2],
            leaves,
            len: records.len(),
        };
        for r in records {
            tree.place(r);
        }
        tree
    }

    /// Slab index of a raw timestamp.
    fn slab_of(&self, t: u64) -> usize {
        // Last boundary <= t.
        self.bounds.partition_point(|&b| b <= t) - 1
    }

    /// Assigns `r` to the canonical node cover of its slab range.
    fn place(&mut self, r: &IntervalRecord) {
        let mut lo = self.slab_of(r.st) + self.leaves;
        let mut hi = self.slab_of(r.end) + self.leaves;
        // Standard bottom-up canonical decomposition on the heap layout.
        loop {
            if lo == hi {
                self.nodes[lo].push(r.id);
                break;
            }
            if lo & 1 == 1 {
                self.nodes[lo].push(r.id);
                lo += 1;
            }
            if hi & 1 == 0 {
                self.nodes[hi].push(r.id);
                hi -= 1;
            }
            if lo > hi {
                break;
            }
            lo >>= 1;
            hi >>= 1;
        }
    }

    /// All ids of intervals containing `t`.
    pub fn stab_query(&self, t: u64) -> Vec<u32> {
        let mut out = Vec::new();
        let mut node = self.slab_of(t) + self.leaves;
        while node >= 1 {
            out.extend_from_slice(&self.nodes[node]);
            if node == 1 {
                break;
            }
            node >>= 1;
        }
        out
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bounds.capacity() * 8
            + self
                .nodes
                .iter()
                .map(|n| n.capacity() * 4 + std::mem::size_of::<Vec<u32>>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_overlap;

    fn sample() -> Vec<IntervalRecord> {
        vec![
            IntervalRecord {
                id: 0,
                st: 0,
                end: 30,
            },
            IntervalRecord {
                id: 1,
                st: 5,
                end: 6,
            },
            IntervalRecord {
                id: 2,
                st: 10,
                end: 20,
            },
            IntervalRecord {
                id: 3,
                st: 29,
                end: 30,
            },
            IntervalRecord {
                id: 4,
                st: 15,
                end: 15,
            },
            IntervalRecord {
                id: 5,
                st: 6,
                end: 10,
            },
        ]
    }

    #[test]
    fn stabbing_matches_oracle() {
        let recs = sample();
        let tree = SegmentTree::build(&recs);
        for t in 0..40u64 {
            let mut got = tree.stab_query(t);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "duplicates at t={t}");
            assert_eq!(got, brute_force_overlap(&recs, t, t), "t={t}");
        }
    }

    #[test]
    fn random_stabbing() {
        let recs: Vec<IntervalRecord> = (0..500u32)
            .map(|i| {
                let st = (i as u64 * 48271) % 10_000;
                IntervalRecord {
                    id: i,
                    st,
                    end: st + (i as u64 * 7) % 300,
                }
            })
            .collect();
        let tree = SegmentTree::build(&recs);
        for t in (0..10_300u64).step_by(97) {
            let mut got = tree.stab_query(t);
            got.sort_unstable();
            assert_eq!(got, brute_force_overlap(&recs, t, t), "t={t}");
        }
    }

    #[test]
    fn empty_tree() {
        let tree = SegmentTree::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.stab_query(5).is_empty());
    }

    #[test]
    fn point_intervals() {
        let recs = vec![
            IntervalRecord {
                id: 0,
                st: 7,
                end: 7,
            },
            IntervalRecord {
                id: 1,
                st: 7,
                end: 7,
            },
        ];
        let tree = SegmentTree::build(&recs);
        let mut got = tree.stab_query(7);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        assert!(tree.stab_query(6).is_empty());
        assert!(tree.stab_query(8).is_empty());
    }
}
