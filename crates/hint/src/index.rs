//! The HINT interval index: sparse hierarchical partitions over a
//! discretized time domain, with bottom-up range queries.

use crate::domain::Domain;
use crate::layout::{CheckMode, DivisionKind, Layout, PartitionChecks};
use crate::partition::{kept_endpoints, DivisionOrder, DivisionView, Partition, TOMBSTONE};
use crate::IntervalRecord;

/// Build-time configuration of a [`Hint`] index.
#[derive(Debug, Clone, Copy)]
pub struct HintConfig {
    /// Number of levels minus one; `None` selects `m` with the cost model
    /// of [`crate::cost::choose_m`].
    pub m: Option<u32>,
    /// Ordering of entries inside subdivisions.
    pub order: DivisionOrder,
    /// Elide endpoint arrays that no query will ever compare.
    pub storage_opt: bool,
}

impl Default for HintConfig {
    fn default() -> Self {
        HintConfig {
            m: None,
            order: DivisionOrder::Beneficial,
            storage_opt: true,
        }
    }
}

impl HintConfig {
    /// Configuration with a fixed `m`.
    pub fn with_m(m: u32) -> Self {
        HintConfig {
            m: Some(m),
            ..Default::default()
        }
    }

    /// Configuration used by merge-sort intersection strategies: divisions
    /// sorted by object id.
    pub fn by_id(m: u32) -> Self {
        HintConfig {
            m: Some(m),
            order: DivisionOrder::ById,
            storage_opt: true,
        }
    }
}

/// Sparse storage of one hierarchy level: partitions sorted by their index
/// within the level. Only non-empty partitions are materialized, which is
/// both the skewness & sparsity optimization of the HINT paper and the
/// reason per-term HINTs (Section 3 of the temporal-IR paper) stay small.
#[derive(Debug, Clone, Default)]
pub(crate) struct Level {
    pub(crate) keys: Vec<u32>,
    pub(crate) parts: Vec<Partition>,
}

impl Level {
    #[inline]
    fn position(&self, j: u32) -> Result<usize, usize> {
        self.keys.binary_search(&j)
    }

    fn get_or_insert(&mut self, j: u32) -> &mut Partition {
        match self.position(j) {
            Ok(i) => &mut self.parts[i],
            Err(i) => {
                self.keys.insert(i, j);
                self.parts.insert(i, Partition::default());
                &mut self.parts[i]
            }
        }
    }
}

/// The hierarchical interval index of Christodoulou et al., as summarized
/// in Section 2.3 of the temporal-IR paper.
///
/// ```
/// use tir_hint::{Hint, HintConfig, IntervalRecord};
///
/// let recs = vec![
///     IntervalRecord { id: 1, st: 2, end: 9 },
///     IntervalRecord { id: 2, st: 12, end: 14 },
/// ];
/// let hint = Hint::build(&recs, HintConfig::with_m(4));
/// let mut hits = hint.range_query(8, 13);
/// hits.sort_unstable();
/// assert_eq!(hits, vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Hint {
    pub(crate) domain: Domain,
    pub(crate) layout: Layout,
    pub(crate) levels: Vec<Level>,
    pub(crate) order: DivisionOrder,
    pub(crate) storage_opt: bool,
    pub(crate) live: usize,
}

impl Hint {
    /// Builds the index over `records`, deriving the domain from the data.
    ///
    /// An empty input produces a valid index over the unit domain.
    pub fn build(records: &[IntervalRecord], config: HintConfig) -> Self {
        let (min, max) = records.iter().fold((u64::MAX, 0u64), |(lo, hi), r| {
            (lo.min(r.st), hi.max(r.end))
        });
        let (min, max) = if records.is_empty() {
            (0, 0)
        } else {
            (min, max)
        };
        Self::build_with_domain(records, min, max, config)
    }

    /// Builds the index over `records` with an explicit raw domain.
    pub fn build_with_domain(
        records: &[IntervalRecord],
        domain_min: u64,
        domain_max: u64,
        config: HintConfig,
    ) -> Self {
        let m = config
            .m
            .unwrap_or_else(|| crate::cost::choose_m(records, domain_min, domain_max));
        let domain = Domain::new(domain_min, domain_max.max(domain_min), m);
        let mut index = Hint {
            domain,
            layout: Layout::new(m),
            levels: (0..=m).map(|_| Level::default()).collect(),
            order: config.order,
            storage_opt: config.storage_opt,
            live: 0,
        };
        index.bulk_place(records);
        index.sort_divisions();
        index
    }

    /// Bulk-loads records: buffers every assignment, sorts each level once
    /// by partition, and appends grouped — `O(E log E)` instead of the
    /// `O(E · P)` of repeated sorted-vector insertion.
    fn bulk_place(&mut self, records: &[IntervalRecord]) {
        let domain = self.domain;
        let layout = self.layout;
        let storage_opt = self.storage_opt;
        let mut bufs: Vec<Vec<(u32, u8, IntervalRecord)>> =
            (0..self.levels.len()).map(|_| Vec::new()).collect();
        for r in records {
            assert!(r.id & TOMBSTONE == 0, "ids must be < 2^31");
            assert!(r.st <= r.end, "invalid interval");
            let a = domain.cell(r.st);
            let b = domain.cell(r.end);
            layout.assign(a, b, |level, j, original| {
                let ends_inside = b <= domain.partition_last_cell(level, j);
                let kind = division_kind(original, ends_inside);
                bufs[level as usize].push((j, kind_code(kind), *r));
            });
        }
        for (li, mut buf) in bufs.into_iter().enumerate() {
            buf.sort_unstable_by_key(|&(j, k, r)| (j, k, r.id));
            let level = &mut self.levels[li];
            for (j, k, r) in buf {
                if level.keys.last() != Some(&j) {
                    level.keys.push(j);
                    level.parts.push(Partition::default());
                }
                let kind = kind_from_code(k);
                let (keep_st, keep_end) = kept_endpoints(kind, storage_opt);
                // The branch above guarantees a partition for `j` exists.
                if let Some(part) = level.parts.last_mut() {
                    part.division_mut(kind).insert(
                        r.id,
                        r.st,
                        r.end,
                        DivisionOrder::Insertion,
                        kind,
                        keep_st,
                        keep_end,
                    );
                }
            }
        }
        self.live += records.len();
    }

    /// The discretized domain this index covers.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of hierarchy levels (`m + 1`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The ordering configured for subdivision entries.
    pub fn division_order(&self) -> DivisionOrder {
        self.order
    }

    /// Whether the storage optimization (endpoint-array elision) is on.
    pub fn storage_opt(&self) -> bool {
        self.storage_opt
    }

    /// The partition indexes materialized at `level`, ascending (empty
    /// for out-of-range levels). Introspection for validators.
    pub fn level_keys(&self, level: u32) -> &[u32] {
        self.levels
            .get(level as usize)
            .map(|l| l.keys.as_slice())
            .unwrap_or(&[])
    }

    /// Visits every materialized division (empty ones included) with its
    /// view and tombstone count, in `(level, j, kind)` order.
    /// Introspection for validators and serializers.
    pub fn for_each_division(&self, mut f: impl FnMut(DivisionView<'_>, usize)) {
        for (li, level) in self.levels.iter().enumerate() {
            for (pi, &j) in level.keys.iter().enumerate() {
                let part = &level.parts[pi];
                for kind in [
                    DivisionKind::OrigIn,
                    DivisionKind::OrigAft,
                    DivisionKind::ReplIn,
                    DivisionKind::ReplAft,
                ] {
                    let d = part.division(kind);
                    f(
                        DivisionView {
                            ids: &d.ids,
                            sts: &d.sts,
                            ends: &d.ends,
                            kind,
                            // analyze:allow(unguarded-cast): level index is bounded by m <= 20
                            level: li as u32,
                            j,
                        },
                        d.dead as usize,
                    );
                }
            }
        }
    }

    /// Deliberately desynchronizes a division's `dead` counter from its
    /// tombstone bits — used by `tir-check`'s property tests to prove the
    /// validator notices. Picks the first non-empty division.
    #[cfg(feature = "testing")]
    pub fn testing_corrupt_dead_counter(&mut self) {
        for level in &mut self.levels {
            for part in &mut level.parts {
                for kind in [
                    DivisionKind::OrigIn,
                    DivisionKind::OrigAft,
                    DivisionKind::ReplIn,
                    DivisionKind::ReplAft,
                ] {
                    let d = part.division_mut(kind);
                    if !d.is_empty() {
                        d.dead += 1;
                        return;
                    }
                }
            }
        }
    }

    /// Number of live (non-deleted) indexed intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live interval is indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of materialized (non-empty) partitions over all levels.
    pub fn num_partitions(&self) -> usize {
        self.levels.iter().map(|l| l.keys.len()).sum()
    }

    /// Total number of stored entries, counting replication.
    pub fn num_entries(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.parts.iter())
            .map(|p| p.len())
            .sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        let parts: usize = self
            .levels
            .iter()
            .flat_map(|l| l.parts.iter())
            .map(|p| p.size_bytes() + std::mem::size_of::<Partition>())
            .sum();
        let keys: usize = self.levels.iter().map(|l| l.keys.capacity() * 4).sum();
        parts + keys + std::mem::size_of::<Self>()
    }

    /// Inserts one interval, maintaining subdivision order incrementally.
    pub fn insert(&mut self, r: &IntervalRecord) {
        assert!(r.id & TOMBSTONE == 0, "ids must be < 2^31");
        assert!(r.st <= r.end, "invalid interval");
        let (order, storage_opt) = (self.order, self.storage_opt);
        let domain = self.domain;
        let a = domain.cell(r.st);
        let b = domain.cell(r.end);
        let layout = self.layout;
        let levels = &mut self.levels;
        layout.assign(a, b, |level, j, original| {
            let ends_inside = b <= domain.partition_last_cell(level, j);
            let kind = division_kind(original, ends_inside);
            let (keep_st, keep_end) = kept_endpoints(kind, storage_opt);
            levels[level as usize]
                .get_or_insert(j)
                .division_mut(kind)
                .insert(r.id, r.st, r.end, order, kind, keep_st, keep_end);
        });
        self.live += 1;
    }

    /// Logically deletes the interval (tombstone on every stored entry).
    /// Returns true if the object was found in its original division.
    ///
    /// The caller must pass the same record that was inserted; the index
    /// uses its endpoints to locate the partitions that store it.
    pub fn delete(&mut self, r: &IntervalRecord) -> bool {
        let domain = self.domain;
        let a = domain.cell(r.st);
        let b = domain.cell(r.end);
        let layout = self.layout;
        let levels = &mut self.levels;
        let mut found = false;
        layout.assign(a, b, |level, j, original| {
            let ends_inside = b <= domain.partition_last_cell(level, j);
            let kind = division_kind(original, ends_inside);
            let level = &mut levels[level as usize];
            if let Ok(i) = level.position(j) {
                let hit = level.parts[i].division_mut(kind).tombstone(r.id);
                if original {
                    found = hit;
                }
            }
        });
        if found {
            self.live -= 1;
        }
        found
    }

    /// Returns the ids of all live intervals overlapping `[q_st, q_end]`
    /// (closed, inclusive overlap). Each result appears exactly once.
    pub fn range_query(&self, q_st: u64, q_end: u64) -> Vec<u32> {
        let mut out = Vec::new();
        self.range_query_into(q_st, q_end, &mut out);
        out
    }

    /// Conventional top-down traversal: identical answers, but the
    /// bottom-up `compfirst`/`complast` elision is disabled, so boundary
    /// partitions pay endpoint comparisons at every level. Kept for the
    /// ablation benches quantifying the bottom-up optimization.
    pub fn range_query_conventional(&self, q_st: u64, q_end: u64) -> Vec<u32> {
        assert!(q_st <= q_end, "invalid query range");
        let mut out = Vec::new();
        let qa = self.domain.cell(q_st);
        let qb = self.domain.cell(q_end);
        let order = self.order;
        self.layout
            .for_each_relevant_level_conventional(qa, qb, |level, f, l, fc, lc, mc| {
                let lvl = &self.levels[level as usize];
                let lo = lvl.keys.partition_point(|&k| k < f);
                for i in lo..lvl.keys.len() {
                    let j = lvl.keys[i];
                    if j > l {
                        break;
                    }
                    let checks = pick_checks(j, f, l, fc, lc, mc);
                    lvl.parts[i].query_into(
                        checks.originals,
                        checks.replicas,
                        order,
                        q_st,
                        q_end,
                        &mut out,
                    );
                }
            });
        out
    }

    /// As [`Self::range_query`] but reusing an output buffer.
    pub fn range_query_into(&self, q_st: u64, q_end: u64, out: &mut Vec<u32>) {
        assert!(q_st <= q_end, "invalid query range");
        let qa = self.domain.cell(q_st);
        let qb = self.domain.cell(q_end);
        let order = self.order;
        self.layout
            .for_each_relevant_level(qa, qb, |level, f, l, fc, lc, mc| {
                let lvl = &self.levels[level as usize];
                debug_assert!(
                    lvl.keys.windows(2).take(32).all(|w| w[0] < w[1]),
                    "level {level} keys must be strictly ascending for binary search"
                );
                let lo = lvl.keys.partition_point(|&k| k < f);
                for i in lo..lvl.keys.len() {
                    let j = lvl.keys[i];
                    if j > l {
                        break;
                    }
                    let checks = pick_checks(j, f, l, fc, lc, mc);
                    lvl.parts[i].query_into(
                        checks.originals,
                        checks.replicas,
                        order,
                        q_st,
                        q_end,
                        out,
                    );
                }
            });
    }

    /// Counts live intervals overlapping the query without materializing
    /// ids (used by selectivity estimation in the benchmark harness).
    pub fn range_count(&self, q_st: u64, q_end: u64) -> usize {
        // Simple and correct; a dedicated counting path would avoid the
        // buffer but is not needed by the reproduction.
        let mut buf = Vec::new();
        self.range_query_into(q_st, q_end, &mut buf);
        buf.len()
    }

    /// Visits every relevant division of the query together with the
    /// endpoint checks it requires.
    ///
    /// This is the extension hook used by the composite indexes of the
    /// paper: Algorithm 3 interleaves candidate-membership tests with the
    /// endpoint checks, and Algorithm 4 merge-intersects id-sorted division
    /// views while ignoring the checks entirely.
    pub fn visit_relevant<F>(&self, q_st: u64, q_end: u64, mut f: F)
    where
        F: FnMut(DivisionView<'_>, CheckMode),
    {
        assert!(q_st <= q_end, "invalid query range");
        let qa = self.domain.cell(q_st);
        let qb = self.domain.cell(q_end);
        self.layout
            .for_each_relevant_level(qa, qb, |level, fst, lst, fc, lc, mc| {
                let lvl = &self.levels[level as usize];
                let lo = lvl.keys.partition_point(|&k| k < fst);
                for i in lo..lvl.keys.len() {
                    let j = lvl.keys[i];
                    if j > lst {
                        break;
                    }
                    let checks = pick_checks(j, fst, lst, fc, lc, mc);
                    let part = &lvl.parts[i];
                    for kind in [
                        DivisionKind::OrigIn,
                        DivisionKind::OrigAft,
                        DivisionKind::ReplIn,
                        DivisionKind::ReplAft,
                    ] {
                        let is_replica =
                            matches!(kind, DivisionKind::ReplIn | DivisionKind::ReplAft);
                        let mode = if is_replica {
                            match checks.replicas {
                                Some(rm) => crate::layout::refine_mode(rm, kind),
                                None => continue,
                            }
                        } else {
                            crate::layout::refine_mode(checks.originals, kind)
                        };
                        let d = part.division(kind);
                        if d.is_empty() {
                            continue;
                        }
                        f(
                            DivisionView {
                                ids: &d.ids,
                                sts: &d.sts,
                                ends: &d.ends,
                                kind,
                                level,
                                j,
                            },
                            mode,
                        );
                    }
                }
            });
    }

    /// Enumerates the divisions `(level, j, kind)` that (would) store `r`
    /// under this index's domain — the hook composite indexes use to keep
    /// sibling per-division structures aligned with the hierarchy.
    pub fn divisions_of(&self, r: &IntervalRecord, mut f: impl FnMut(u32, u32, DivisionKind)) {
        let domain = self.domain;
        let a = domain.cell(r.st);
        let b = domain.cell(r.end);
        self.layout.assign(a, b, |level, j, original| {
            let ends_inside = b <= domain.partition_last_cell(level, j);
            f(level, j, division_kind(original, ends_inside));
        });
    }

    fn sort_divisions(&mut self) {
        if self.order == DivisionOrder::Insertion {
            return;
        }
        for level in &mut self.levels {
            for part in &mut level.parts {
                for kind in [
                    DivisionKind::OrigIn,
                    DivisionKind::OrigAft,
                    DivisionKind::ReplIn,
                    DivisionKind::ReplAft,
                ] {
                    sort_division(part.division_mut(kind), self.order, kind);
                }
            }
        }
    }
}

fn kind_code(kind: DivisionKind) -> u8 {
    match kind {
        DivisionKind::OrigIn => 0,
        DivisionKind::OrigAft => 1,
        DivisionKind::ReplIn => 2,
        DivisionKind::ReplAft => 3,
    }
}

fn kind_from_code(code: u8) -> DivisionKind {
    match code {
        0 => DivisionKind::OrigIn,
        1 => DivisionKind::OrigAft,
        2 => DivisionKind::ReplIn,
        _ => DivisionKind::ReplAft,
    }
}

fn division_kind(original: bool, ends_inside: bool) -> DivisionKind {
    match (original, ends_inside) {
        (true, true) => DivisionKind::OrigIn,
        (true, false) => DivisionKind::OrigAft,
        (false, true) => DivisionKind::ReplIn,
        (false, false) => DivisionKind::ReplAft,
    }
}

#[inline]
fn pick_checks(
    j: u32,
    f: u32,
    l: u32,
    fc: PartitionChecks,
    lc: PartitionChecks,
    mc: PartitionChecks,
) -> PartitionChecks {
    if j == f {
        fc
    } else if j == l {
        lc
    } else {
        mc
    }
}

fn sort_division(d: &mut crate::partition::Division, order: DivisionOrder, kind: DivisionKind) {
    use crate::partition::{sort_key, SortKey};
    let n = d.ids.len();
    if n <= 1 {
        return;
    }
    // analyze:allow(unguarded-cast): record ids are u32 by construction, so n <= u32::MAX
    let mut perm: Vec<u32> = (0..n as u32).collect();
    match order {
        DivisionOrder::ById => {
            perm.sort_unstable_by_key(|&i| d.ids[i as usize] & !TOMBSTONE);
        }
        DivisionOrder::Beneficial => match sort_key(kind) {
            SortKey::StAsc => perm.sort_unstable_by_key(|&i| d.sts[i as usize]),
            SortKey::EndDesc => {
                perm.sort_unstable_by_key(|&i| std::cmp::Reverse(d.ends[i as usize]))
            }
            SortKey::Unordered => return,
        },
        DivisionOrder::Insertion => return,
    }
    d.ids = perm.iter().map(|&i| d.ids[i as usize]).collect();
    if !d.sts.is_empty() {
        d.sts = perm.iter().map(|&i| d.sts[i as usize]).collect();
    }
    if !d.ends.is_empty() {
        d.ends = perm.iter().map(|&i| d.ends[i as usize]).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_overlap;

    fn sample() -> Vec<IntervalRecord> {
        vec![
            IntervalRecord {
                id: 0,
                st: 0,
                end: 3,
            },
            IntervalRecord {
                id: 1,
                st: 2,
                end: 9,
            },
            IntervalRecord {
                id: 2,
                st: 5,
                end: 5,
            },
            IntervalRecord {
                id: 3,
                st: 7,
                end: 15,
            },
            IntervalRecord {
                id: 4,
                st: 0,
                end: 15,
            },
            IntervalRecord {
                id: 5,
                st: 12,
                end: 13,
            },
            IntervalRecord {
                id: 6,
                st: 9,
                end: 10,
            },
        ]
    }

    fn assert_matches_oracle(hint: &Hint, recs: &[IntervalRecord], q_st: u64, q_end: u64) {
        let mut got = hint.range_query(q_st, q_end);
        got.sort_unstable();
        let want = brute_force_overlap(recs, q_st, q_end);
        assert_eq!(got, want, "query [{q_st},{q_end}]");
    }

    #[test]
    fn matches_oracle_exhaustively_small() {
        for m in [0u32, 1, 2, 3, 4] {
            let recs = sample();
            let hint = Hint::build(&recs, HintConfig::with_m(m));
            for q_st in 0..=16u64 {
                for q_end in q_st..=16 {
                    assert_matches_oracle(&hint, &recs, q_st, q_end);
                }
            }
        }
    }

    #[test]
    fn matches_oracle_all_orders() {
        for order in [
            DivisionOrder::Beneficial,
            DivisionOrder::ById,
            DivisionOrder::Insertion,
        ] {
            let recs = sample();
            let cfg = HintConfig {
                m: Some(3),
                order,
                storage_opt: order != DivisionOrder::Insertion,
            };
            let hint = Hint::build(&recs, cfg);
            for q_st in 0..=16u64 {
                for q_end in q_st..=16 {
                    assert_matches_oracle(&hint, &recs, q_st, q_end);
                }
            }
        }
    }

    #[test]
    fn no_duplicates_ever() {
        let recs = sample();
        let hint = Hint::build(&recs, HintConfig::with_m(4));
        for q_st in 0..=16u64 {
            for q_end in q_st..=16 {
                let mut got = hint.range_query(q_st, q_end);
                let n = got.len();
                got.sort_unstable();
                got.dedup();
                assert_eq!(n, got.len(), "duplicates for [{q_st},{q_end}]");
            }
        }
    }

    #[test]
    fn incremental_insert_equals_bulk_build() {
        let recs = sample();
        let bulk = Hint::build(&recs, HintConfig::with_m(3));
        let mut inc = Hint::build_with_domain(&[], 0, 15, HintConfig::with_m(3));
        for r in &recs {
            inc.insert(r);
        }
        for q_st in 0..=16u64 {
            for q_end in q_st..=16 {
                let mut a = bulk.range_query(q_st, q_end);
                let mut b = inc.range_query(q_st, q_end);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn delete_hides_interval() {
        let recs = sample();
        let mut hint = Hint::build(&recs, HintConfig::with_m(3));
        assert!(hint.delete(&recs[4]));
        assert!(!hint.delete(&recs[4]), "double delete");
        assert_eq!(hint.len(), recs.len() - 1);
        for q_st in 0..=16u64 {
            for q_end in q_st..=16 {
                let got = hint.range_query(q_st, q_end);
                assert!(!got.contains(&4), "deleted id resurfaced");
                let want = brute_force_overlap(&recs[..4], q_st, q_end)
                    .into_iter()
                    .chain(brute_force_overlap(&recs[5..], q_st, q_end))
                    .collect::<std::collections::BTreeSet<_>>();
                let got: std::collections::BTreeSet<_> = got.into_iter().collect();
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn queries_clamp_outside_domain() {
        let recs = sample();
        let hint = Hint::build(&recs, HintConfig::with_m(3));
        let mut got = hint.range_query(0, u64::MAX);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(hint.range_query(1000, 2000).is_empty() || !recs.is_empty());
    }

    #[test]
    fn empty_index_is_fine() {
        let hint = Hint::build(&[], HintConfig::default());
        assert!(hint.is_empty());
        assert!(hint.range_query(0, 100).is_empty());
    }

    #[test]
    fn visit_relevant_reconstructs_range_query() {
        let recs = sample();
        let hint = Hint::build(&recs, HintConfig::with_m(4));
        for (q_st, q_end) in [(0u64, 0u64), (3, 9), (5, 5), (0, 15), (9, 14)] {
            let mut got = Vec::new();
            hint.visit_relevant(q_st, q_end, |view, mode| {
                for (i, &id) in view.ids.iter().enumerate() {
                    if id & TOMBSTONE != 0 {
                        continue;
                    }
                    let ok = match mode {
                        CheckMode::None => true,
                        CheckMode::Start => view.sts[i] <= q_end,
                        CheckMode::End => view.ends[i] >= q_st,
                        CheckMode::Both => view.sts[i] <= q_end && view.ends[i] >= q_st,
                    };
                    if ok {
                        got.push(id);
                    }
                }
            });
            got.sort_unstable();
            assert_eq!(got, brute_force_overlap(&recs, q_st, q_end));
        }
    }

    #[test]
    fn size_and_counters_plausible() {
        let recs = sample();
        let hint = Hint::build(&recs, HintConfig::with_m(3));
        assert_eq!(hint.len(), recs.len());
        assert!(hint.num_entries() >= recs.len());
        assert!(hint.size_bytes() > 0);
        assert!(hint.num_partitions() > 0);
    }
}
