//! Allen-relationship queries on [`Hint`] — the extension of the HINT
//! journal version (reference \[20\] in the temporal-IR paper): instead of plain
//! overlap, retrieve the intervals standing in one specific Allen
//! relation to the query interval.
//!
//! The implementation exploits a structural fact of the hierarchy: the
//! decomposition of every interval covers its cell range disjointly, so
//! **exactly one** assigned partition contains any given cell of the
//! interval. Relations anchored at a query endpoint (equals, starts,
//! meets, overlaps, contains, …) therefore only need the `m + 1`
//! partitions on the *column* of that endpoint's cell; `before` / `after`
//! / `during` scan originals (each interval has exactly one original
//! partition), giving duplicate-free answers without hashing.
//!
//! Endpoint comparisons are exact on the raw timestamps, so the column
//! pruning is conservative and the filters precise. Because several
//! relations compare both endpoints in every subdivision, Allen queries
//! require an index built with `storage_opt: false`.

use crate::index::Hint;
use crate::partition::{Division, TOMBSTONE};
use crate::IntervalRecord;

/// The thirteen relations of Allen's interval algebra, phrased for a
/// stored interval `i` against the query `q` (closed intervals, endpoint
/// comparisons as listed on each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllenRelation {
    /// `i.st == q.st && i.end == q.end`
    Equals,
    /// `i.end < q.st`
    Before,
    /// `i.st > q.end`
    After,
    /// `i.end == q.st`
    Meets,
    /// `i.st == q.end`
    MetBy,
    /// `i.st < q.st && q.st < i.end && i.end < q.end`
    Overlaps,
    /// `q.st < i.st && i.st < q.end && q.end < i.end`
    OverlappedBy,
    /// `i.st > q.st && i.end < q.end`
    During,
    /// `i.st < q.st && i.end > q.end`
    Contains,
    /// `i.st == q.st && i.end < q.end`
    Starts,
    /// `i.st == q.st && i.end > q.end`
    StartedBy,
    /// `i.end == q.end && i.st > q.st`
    Finishes,
    /// `i.end == q.end && i.st < q.st`
    FinishedBy,
}

impl AllenRelation {
    /// All thirteen relations.
    pub const ALL: [AllenRelation; 13] = [
        AllenRelation::Equals,
        AllenRelation::Before,
        AllenRelation::After,
        AllenRelation::Meets,
        AllenRelation::MetBy,
        AllenRelation::Overlaps,
        AllenRelation::OverlappedBy,
        AllenRelation::During,
        AllenRelation::Contains,
        AllenRelation::Starts,
        AllenRelation::StartedBy,
        AllenRelation::Finishes,
        AllenRelation::FinishedBy,
    ];

    /// The exact predicate this relation denotes.
    #[inline]
    pub fn matches(self, i_st: u64, i_end: u64, q_st: u64, q_end: u64) -> bool {
        use AllenRelation::*;
        match self {
            Equals => i_st == q_st && i_end == q_end,
            Before => i_end < q_st,
            After => i_st > q_end,
            Meets => i_end == q_st,
            MetBy => i_st == q_end,
            Overlaps => i_st < q_st && q_st < i_end && i_end < q_end,
            OverlappedBy => q_st < i_st && i_st < q_end && q_end < i_end,
            During => i_st > q_st && i_end < q_end,
            Contains => i_st < q_st && i_end > q_end,
            Starts => i_st == q_st && i_end < q_end,
            StartedBy => i_st == q_st && i_end > q_end,
            Finishes => i_end == q_end && i_st > q_st,
            FinishedBy => i_end == q_end && i_st < q_st,
        }
    }
}

/// Reference implementation for tests and benchmarks.
pub fn brute_force_allen(
    records: &[IntervalRecord],
    rel: AllenRelation,
    q_st: u64,
    q_end: u64,
) -> Vec<u32> {
    let mut out: Vec<u32> = records
        .iter()
        .filter(|r| rel.matches(r.st, r.end, q_st, q_end))
        .map(|r| r.id)
        .collect();
    out.sort_unstable();
    out
}

impl Hint {
    /// Returns the ids of all live intervals standing in `rel` to
    /// `[q_st, q_end]`. Results are duplicate-free.
    ///
    /// # Panics
    /// Panics if the index was built with the storage optimization: Allen
    /// filters compare both endpoints in every subdivision, so all
    /// endpoint arrays must be materialized (`storage_opt: false` —
    /// consistent with the paper's experimental setup, which drops the
    /// storage optimization in line with the HINT journal version).
    pub fn allen_query(&self, rel: AllenRelation, q_st: u64, q_end: u64) -> Vec<u32> {
        assert!(q_st <= q_end, "invalid query range");
        assert!(
            !self.storage_opt,
            "Allen queries need HintConfig {{ storage_opt: false, .. }}"
        );
        use AllenRelation::*;
        let mut out = Vec::new();
        match rel {
            // Anchored at q.st, interval *starts* there: originals only.
            Equals | Starts | StartedBy => {
                self.scan_column(self.domain.cell(q_st), true, rel, q_st, q_end, &mut out)
            }
            // Interval crosses/ends/starts at an endpoint cell: the one
            // assigned partition containing that cell sees it.
            Meets | Overlaps | Contains => {
                self.scan_column(self.domain.cell(q_st), false, rel, q_st, q_end, &mut out)
            }
            MetBy | OverlappedBy | Finishes | FinishedBy => {
                self.scan_column(self.domain.cell(q_end), false, rel, q_st, q_end, &mut out)
            }
            // Order relations: scan originals over a half-open cell range.
            Before => {
                self.scan_originals_range(0, self.domain.cell(q_st), rel, q_st, q_end, &mut out)
            }
            After => self.scan_originals_range(
                self.domain.cell(q_end),
                self.domain.num_cells() - 1,
                rel,
                q_st,
                q_end,
                &mut out,
            ),
            During => self.scan_originals_range(
                self.domain.cell(q_st),
                self.domain.cell(q_end),
                rel,
                q_st,
                q_end,
                &mut out,
            ),
        }
        out
    }

    /// Visits the partition containing `cell` at every level, filtering
    /// entries by the exact predicate. `originals_only` skips replicas
    /// when the relation pins the interval start (originals are the only
    /// copies whose partition contains the start cell).
    fn scan_column(
        &self,
        cell: u32,
        originals_only: bool,
        rel: AllenRelation,
        q_st: u64,
        q_end: u64,
        out: &mut Vec<u32>,
    ) {
        let m = self.layout.m();
        for level in 0..=m {
            let j = cell >> (m - level);
            let lvl = &self.levels[level as usize];
            if let Ok(i) = lvl.keys.binary_search(&j) {
                let part = &lvl.parts[i];
                filter_division(&part.orig_in, rel, q_st, q_end, out);
                filter_division(&part.orig_aft, rel, q_st, q_end, out);
                if !originals_only {
                    filter_division(&part.repl_in, rel, q_st, q_end, out);
                    filter_division(&part.repl_aft, rel, q_st, q_end, out);
                }
            }
        }
    }

    /// Visits the originals of every partition intersecting the cell range
    /// `[lo, hi]` at every level (each interval has exactly one original
    /// partition, and it contains the interval's start cell).
    fn scan_originals_range(
        &self,
        lo: u32,
        hi: u32,
        rel: AllenRelation,
        q_st: u64,
        q_end: u64,
        out: &mut Vec<u32>,
    ) {
        let m = self.layout.m();
        for level in 0..=m {
            let shift = m - level;
            let (f, l) = (lo >> shift, hi >> shift);
            let lvl = &self.levels[level as usize];
            let start = lvl.keys.partition_point(|&k| k < f);
            for i in start..lvl.keys.len() {
                if lvl.keys[i] > l {
                    break;
                }
                let part = &lvl.parts[i];
                filter_division(&part.orig_in, rel, q_st, q_end, out);
                filter_division(&part.orig_aft, rel, q_st, q_end, out);
            }
        }
    }
}

fn filter_division(d: &Division, rel: AllenRelation, q_st: u64, q_end: u64, out: &mut Vec<u32>) {
    for i in 0..d.ids.len() {
        let id = d.ids[i];
        if id & TOMBSTONE == 0 && rel.matches(d.sts[i], d.ends[i], q_st, q_end) {
            out.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::DivisionOrder;
    use crate::{HintConfig, IntervalRecord};

    fn allen_config(m: u32) -> HintConfig {
        HintConfig {
            m: Some(m),
            order: DivisionOrder::Beneficial,
            storage_opt: false,
        }
    }

    fn sample() -> Vec<IntervalRecord> {
        let mut recs = Vec::new();
        let mut id = 0;
        for st in 0..20u64 {
            for len in [0u64, 1, 3, 7, 15] {
                recs.push(IntervalRecord {
                    id,
                    st,
                    end: st + len,
                });
                id += 1;
            }
        }
        recs
    }

    #[test]
    fn all_relations_match_oracle_exhaustively() {
        let recs = sample();
        for m in [0u32, 2, 4, 5] {
            let hint = Hint::build(&recs, allen_config(m));
            for q_st in 0..22u64 {
                for q_end in q_st..26 {
                    for rel in AllenRelation::ALL {
                        let mut got = hint.allen_query(rel, q_st, q_end);
                        let n = got.len();
                        got.sort_unstable();
                        got.dedup();
                        assert_eq!(n, got.len(), "duplicates {rel:?} m={m} q=[{q_st},{q_end}]");
                        assert_eq!(
                            got,
                            brute_force_allen(&recs, rel, q_st, q_end),
                            "{rel:?} m={m} q=[{q_st},{q_end}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn relations_partition_nondegenerate_cases() {
        // For intervals and queries with distinct endpoints, exactly one
        // relation holds — the classic Allen property.
        let cases = [
            (2u64, 5u64, 10u64, 20u64),
            (10, 20, 2, 5),
            (2, 15, 10, 20),
            (12, 25, 10, 20),
            (12, 15, 10, 20),
            (5, 25, 10, 20),
            (10, 15, 10, 20),
            (10, 25, 10, 20),
            (15, 20, 10, 20),
            (5, 20, 10, 20),
            (10, 20, 10, 20),
            (2, 10, 10, 20),
            (20, 30, 10, 20),
        ];
        for (i_st, i_end, q_st, q_end) in cases {
            let holds: Vec<_> = AllenRelation::ALL
                .iter()
                .filter(|r| r.matches(i_st, i_end, q_st, q_end))
                .collect();
            assert_eq!(
                holds.len(),
                1,
                "i=[{i_st},{i_end}] q=[{q_st},{q_end}]: {holds:?}"
            );
        }
    }

    #[test]
    fn respects_tombstones() {
        let recs = sample();
        let mut hint = Hint::build(&recs, allen_config(4));
        let victim = recs[17];
        assert!(hint.delete(&victim));
        for rel in AllenRelation::ALL {
            let got = hint.allen_query(rel, victim.st, victim.end);
            assert!(!got.contains(&victim.id), "{rel:?} returned deleted id");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_storage_optimized_index() {
        let recs = sample();
        let hint = Hint::build(&recs, HintConfig::with_m(4)); // storage_opt: true
        let _ = hint.allen_query(AllenRelation::Equals, 0, 5);
    }
}
