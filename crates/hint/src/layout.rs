//! The HINT hierarchy layout: interval-to-partition assignment and the
//! per-level relevant-partition walk of a range query.
//!
//! This module is deliberately independent of any concrete partition
//! payload so that composite indexes (e.g. irHINT, which stores an inverted
//! index per division) can reuse the exact same partitioning and
//! duplicate-avoidance machinery as the plain interval index.

/// Which raw-endpoint comparisons a division requires for a given query.
///
/// `Start` means `i.st <= q.end` must be verified, `End` means
/// `q.st <= i.end` must be verified, `Both` means both, and `None` means
/// every (live) entry of the division is guaranteed to overlap the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// No comparison needed: report everything.
    None,
    /// Verify `i.st <= q.end`.
    Start,
    /// Verify `q.st <= i.end`.
    End,
    /// Verify both endpoint conditions.
    Both,
}

impl CheckMode {
    /// True if the mode requires looking at interval start points.
    #[inline]
    pub fn needs_start(self) -> bool {
        matches!(self, CheckMode::Start | CheckMode::Both)
    }

    /// True if the mode requires looking at interval end points.
    #[inline]
    pub fn needs_end(self) -> bool {
        matches!(self, CheckMode::End | CheckMode::Both)
    }
}

/// The four subdivisions of a HINT partition.
///
/// Originals start inside the partition; replicas start before it.
/// `In` divisions end inside the partition, `Aft` divisions end after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivisionKind {
    /// Originals ending inside the partition (`P^{O_in}`).
    OrigIn,
    /// Originals ending after the partition (`P^{O_aft}`).
    OrigAft,
    /// Replicas ending inside the partition (`P^{R_in}`).
    ReplIn,
    /// Replicas ending after the partition (`P^{R_aft}`).
    ReplAft,
}

/// Refines a partition-level check mode to a subdivision, exploiting what
/// the subdivision's membership already guarantees:
///
/// * `*Aft` entries end after the partition, and the first relevant
///   partition contains `q.st`, so `q.st <= i.end` holds structurally.
/// * Replicas start before the partition, and the first relevant partition
///   contains `q.st`, so `i.st <= q.end` holds structurally (replica modes
///   passed here are only ever `None`/`End` by Algorithm 2).
#[inline]
pub fn refine_mode(mode: CheckMode, kind: DivisionKind) -> CheckMode {
    match kind {
        DivisionKind::OrigIn => mode,
        DivisionKind::OrigAft => match mode {
            CheckMode::Both | CheckMode::Start => CheckMode::Start,
            CheckMode::End | CheckMode::None => CheckMode::None,
        },
        DivisionKind::ReplIn => match mode {
            CheckMode::End | CheckMode::Both => CheckMode::End,
            _ => CheckMode::None,
        },
        DivisionKind::ReplAft => CheckMode::None,
    }
}

/// The pure hierarchy geometry for `m + 1` levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    m: u32,
}

/// Role of a relevant partition within its level, as seen by a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionChecks {
    /// Comparison mode for the originals divisions.
    pub originals: CheckMode,
    /// Comparison mode for the replicas divisions; `None` (the Option)
    /// means replicas must not be accessed at all (duplicate avoidance:
    /// replicas are only read in the first relevant partition per level).
    pub replicas: Option<CheckMode>,
}

impl Layout {
    /// Creates a layout with levels `0..=m`.
    pub fn new(m: u32) -> Self {
        assert!(m <= crate::domain::Domain::MAX_M);
        Layout { m }
    }

    /// Number of levels minus one.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Assigns the cell interval `[a, b]` (bottom-level cells) to its
    /// minimal cover of partitions, invoking `f(level, j, is_original)`
    /// for every assigned partition. Exactly one invocation has
    /// `is_original == true`: the partition containing cell `a`.
    ///
    /// This is the classic segment-tree style decomposition used by HINT;
    /// at most two partitions per level are produced.
    pub fn assign(&self, a: u32, b: u32, mut f: impl FnMut(u32, u32, bool)) {
        debug_assert!(a <= b);
        // analyze:allow(unguarded-cast): m <= 20 is a build-time invariant, so 1 << m fits u32
        debug_assert!(b < (1u64 << self.m) as u32);
        let a0 = a;
        let (mut a, mut b) = (a, b);
        let mut level = self.m;
        loop {
            if a == b {
                let original = (a0 >> (self.m - level)) == a;
                f(level, a, original);
                break;
            }
            if a & 1 == 1 {
                let original = (a0 >> (self.m - level)) == a;
                f(level, a, original);
                a += 1;
            }
            if b & 1 == 0 {
                let original = (a0 >> (self.m - level)) == b;
                f(level, b, original);
                b -= 1;
            }
            if a > b {
                break;
            }
            a >>= 1;
            b >>= 1;
            debug_assert!(level > 0, "assignment must terminate at level 0");
            level -= 1;
        }
    }

    /// Walks the relevant partitions of the range query `[qa, qb]` (given
    /// as bottom-level cells) bottom-up, invoking
    /// `f(level, first_j, last_j, first_checks, last_checks, middle_checks)`
    /// once per level.
    ///
    /// The three `PartitionChecks` describe respectively the first relevant
    /// partition, the last relevant partition when it differs from the
    /// first, and every partition strictly in between. The `compfirst` /
    /// `complast` flags of Algorithm 2 are maintained internally.
    pub fn for_each_relevant_level(
        &self,
        qa: u32,
        qb: u32,
        f: impl FnMut(u32, u32, u32, PartitionChecks, PartitionChecks, PartitionChecks),
    ) {
        self.walk_relevant(qa, qb, true, f)
    }

    /// As [`Self::for_each_relevant_level`] but *without* the bottom-up
    /// comparison elision: the `compfirst`/`complast` flags stay set at
    /// every level, so boundary partitions are always compared. This is
    /// the conventional top-down traversal the HINT paper improves upon;
    /// kept for the ablation benches.
    pub fn for_each_relevant_level_conventional(
        &self,
        qa: u32,
        qb: u32,
        f: impl FnMut(u32, u32, u32, PartitionChecks, PartitionChecks, PartitionChecks),
    ) {
        self.walk_relevant(qa, qb, false, f)
    }

    fn walk_relevant(
        &self,
        qa: u32,
        qb: u32,
        elide_comparisons: bool,
        mut f: impl FnMut(u32, u32, u32, PartitionChecks, PartitionChecks, PartitionChecks),
    ) {
        debug_assert!(qa <= qb);
        let mut compfirst = true;
        let mut complast = true;
        for level in (0..=self.m).rev() {
            let shift = self.m - level;
            let first = qa >> shift;
            let last = qb >> shift;

            let first_checks = if first == last && compfirst && complast {
                PartitionChecks {
                    originals: CheckMode::Both,
                    replicas: Some(CheckMode::End),
                }
            } else if first == last && complast {
                // compfirst is false
                PartitionChecks {
                    originals: CheckMode::Start,
                    replicas: Some(CheckMode::None),
                }
            } else if compfirst {
                PartitionChecks {
                    originals: CheckMode::End,
                    replicas: Some(CheckMode::End),
                }
            } else {
                PartitionChecks {
                    originals: CheckMode::None,
                    replicas: Some(CheckMode::None),
                }
            };
            let last_checks = if complast {
                PartitionChecks {
                    originals: CheckMode::Start,
                    replicas: None,
                }
            } else {
                PartitionChecks {
                    originals: CheckMode::None,
                    replicas: None,
                }
            };
            let middle_checks = PartitionChecks {
                originals: CheckMode::None,
                replicas: None,
            };

            f(level, first, last, first_checks, last_checks, middle_checks);

            if elide_comparisons {
                if first & 1 == 0 {
                    compfirst = false;
                }
                if last & 1 == 1 {
                    complast = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_assign(m: u32, a: u32, b: u32) -> Vec<(u32, u32, bool)> {
        let layout = Layout::new(m);
        let mut out = Vec::new();
        layout.assign(a, b, |l, j, o| out.push((l, j, o)));
        out
    }

    #[test]
    fn paper_figure4_assignment() {
        // Interval i = [1, 4] with m = 3 goes to P3,1 (original), P3,4 and
        // P2,1 (replicas) per Figure 4 of the paper.
        let mut got = collect_assign(3, 1, 4);
        got.sort_unstable();
        assert_eq!(got, vec![(2, 1, false), (3, 1, true), (3, 4, false)]);
    }

    #[test]
    fn point_interval_assigned_to_single_leaf() {
        assert_eq!(collect_assign(3, 5, 5), vec![(3, 5, true)]);
    }

    #[test]
    fn full_domain_goes_to_root() {
        assert_eq!(collect_assign(3, 0, 7), vec![(0, 0, true)]);
    }

    #[test]
    fn exactly_one_original() {
        for (a, b) in [(0u32, 0), (0, 7), (1, 6), (2, 5), (3, 3), (6, 7), (1, 2)] {
            let got = collect_assign(3, a, b);
            assert_eq!(
                got.iter().filter(|(_, _, o)| *o).count(),
                1,
                "interval [{a},{b}]"
            );
        }
    }

    #[test]
    fn assignment_covers_exactly_the_interval() {
        // The union of assigned partition ranges must be exactly [a, b]
        // and pairwise disjoint.
        let m = 5;
        let n = 1u32 << m;
        for a in 0..n {
            for b in a..n {
                let mut covered = vec![0u8; n as usize];
                for (l, j, _) in collect_assign(m, a, b) {
                    let w = 1u32 << (m - l);
                    for c in j * w..j * w + w {
                        covered[c as usize] += 1;
                    }
                }
                for c in 0..n {
                    let want = u8::from(c >= a && c <= b);
                    assert_eq!(covered[c as usize], want, "a={a} b={b} cell={c}");
                }
            }
        }
    }

    #[test]
    fn at_most_two_partitions_per_level() {
        let m = 6;
        let n = 1u32 << m;
        for a in (0..n).step_by(3) {
            for b in (a..n).step_by(5) {
                let mut per_level = vec![0u8; (m + 1) as usize];
                for (l, _, _) in collect_assign(m, a, b) {
                    per_level[l as usize] += 1;
                }
                assert!(per_level.iter().all(|&c| c <= 2), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn relevant_walk_visits_expected_partitions() {
        // Query q of Figure 4 spans cells [4, 7]: relevant partitions are
        // P3,4..P3,7, P2,2..P2,3, P1,1 and P0,0.
        let layout = Layout::new(3);
        let mut seen = Vec::new();
        layout.for_each_relevant_level(4, 7, |l, f, la, _, _, _| seen.push((l, f, la)));
        assert_eq!(seen, vec![(3, 4, 7), (2, 2, 3), (1, 1, 1), (0, 0, 0)]);
    }

    #[test]
    fn compfirst_clears_after_even_first() {
        // qa = 4 at level 3 -> first partition 4 (even) -> no start-side
        // comparisons at level 2 and above.
        let layout = Layout::new(3);
        let mut first_modes = Vec::new();
        layout.for_each_relevant_level(4, 7, |l, _, _, fc, _, _| first_modes.push((l, fc)));
        // level 3: first==4, last==7, compfirst&&complast, f != l
        assert_eq!(first_modes[0].1.originals, CheckMode::End);
        // level 2: compfirst cleared (4 even); last 7 odd cleared complast too
        assert_eq!(first_modes[1].1.originals, CheckMode::None);
        assert_eq!(first_modes[2].1.originals, CheckMode::None);
    }

    #[test]
    fn refine_mode_rules() {
        use CheckMode::*;
        use DivisionKind::*;
        assert_eq!(refine_mode(Both, OrigIn), Both);
        assert_eq!(refine_mode(Both, OrigAft), Start);
        assert_eq!(refine_mode(End, OrigAft), None);
        assert_eq!(refine_mode(End, ReplIn), End);
        assert_eq!(refine_mode(End, ReplAft), None);
        assert_eq!(refine_mode(None, OrigIn), None);
    }
}
