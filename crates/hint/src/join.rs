//! Interval overlap joins — the "other types of temporal IR queries,
//! e.g., joins" direction of the paper's Section 7.
//!
//! Three algorithms with identical output sets:
//!
//! * [`forward_scan_join`] — the classic plane-sweep (FS) join over two
//!   start-sorted lists, `O(sort + output)`;
//! * [`grid_join`] — domain-partitioned join with reference-value
//!   de-duplication, the parallelization-friendly layout;
//! * [`hint_inl_join`] — index-nested-loop probing a [`Hint`] built on
//!   one side, the right choice when one side is already indexed.

use crate::grid::Grid1D;
use crate::index::Hint;
use crate::IntervalRecord;

/// Emits every overlapping pair `(a.id, b.id)` via plane sweep.
/// Pairs are emitted exactly once, in no particular order.
pub fn forward_scan_join(
    a: &[IntervalRecord],
    b: &[IntervalRecord],
    mut emit: impl FnMut(u32, u32),
) {
    let mut a: Vec<IntervalRecord> = a.to_vec();
    let mut b: Vec<IntervalRecord> = b.to_vec();
    a.sort_unstable_by_key(|r| r.st);
    b.sort_unstable_by_key(|r| r.st);

    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i].st <= b[j].st {
            // a[i] is the reference: join it with every b starting within.
            let bound = a[i].end;
            let mut k = j;
            while k < b.len() && b[k].st <= bound {
                emit(a[i].id, b[k].id);
                k += 1;
            }
            i += 1;
        } else {
            let bound = b[j].end;
            let mut k = i;
            while k < a.len() && a[k].st <= bound {
                emit(a[k].id, b[j].id);
                k += 1;
            }
            j += 1;
        }
    }
}

/// Domain-partitioned overlap join on a `k`-cell grid: both inputs are
/// replicated into overlapping cells, cells are joined independently
/// (mini forward scans), and the reference value method reports each pair
/// exactly once — from the cell containing `max(a.st, b.st)`.
pub fn grid_join(
    a: &[IntervalRecord],
    b: &[IntervalRecord],
    k: u32,
    mut emit: impl FnMut(u32, u32),
) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    let (min, max) = a
        .iter()
        .chain(b.iter())
        .fold((u64::MAX, 0u64), |(lo, hi), r| {
            (lo.min(r.st), hi.max(r.end))
        });
    let ga = Grid1D::build_with_domain(a, min, max, k);
    let gb = Grid1D::build_with_domain(b, min, max, k);
    for c in 0..k {
        let ca = ga.cell_contents(c);
        let cb = gb.cell_contents(c);
        if ca.is_empty() || cb.is_empty() {
            continue;
        }
        for ra in ca {
            for rb in cb {
                if ra.st <= rb.end && rb.st <= ra.end {
                    let refv = ra.st.max(rb.st);
                    if ga.cell_of(refv) == c {
                        emit(ra.id, rb.id);
                    }
                }
            }
        }
    }
}

/// Index-nested-loop join: probes `indexed_b` with every interval of `a`.
pub fn hint_inl_join(a: &[IntervalRecord], indexed_b: &Hint, mut emit: impl FnMut(u32, u32)) {
    let mut buf = Vec::new();
    for ra in a {
        buf.clear();
        indexed_b.range_query_into(ra.st, ra.end, &mut buf);
        for &idb in &buf {
            emit(ra.id, idb);
        }
    }
}

/// Reference nested-loop join for tests.
pub fn brute_force_join(a: &[IntervalRecord], b: &[IntervalRecord]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for ra in a {
        for rb in b {
            if ra.st <= rb.end && rb.st <= ra.end {
                out.push((ra.id, rb.id));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HintConfig;

    fn mk(seed: u64, n: u32, domain: u64, max_len: u64) -> Vec<IntervalRecord> {
        (0..n)
            .map(|i| {
                let st = (i as u64 * 2654435761 + seed * 97) % domain;
                let len = (i as u64 * 48271 + seed) % max_len;
                IntervalRecord {
                    id: i,
                    st,
                    end: (st + len).min(domain + max_len),
                }
            })
            .collect()
    }

    fn run_all(a: &[IntervalRecord], b: &[IntervalRecord]) {
        let want = brute_force_join(a, b);
        let mut fs = Vec::new();
        forward_scan_join(a, b, |x, y| fs.push((x, y)));
        let n = fs.len();
        fs.sort_unstable();
        fs.dedup();
        assert_eq!(n, fs.len(), "FS emitted duplicates");
        assert_eq!(fs, want, "forward scan");

        for k in [1u32, 3, 17] {
            let mut gj = Vec::new();
            grid_join(a, b, k, |x, y| gj.push((x, y)));
            let n = gj.len();
            gj.sort_unstable();
            gj.dedup();
            assert_eq!(n, gj.len(), "grid k={k} emitted duplicates");
            assert_eq!(gj, want, "grid k={k}");
        }

        let hint = Hint::build(b, HintConfig::default());
        let mut inl = Vec::new();
        hint_inl_join(a, &hint, |x, y| inl.push((x, y)));
        inl.sort_unstable();
        assert_eq!(inl, want, "hint INL");
    }

    #[test]
    fn joins_match_oracle() {
        let a = mk(1, 120, 1000, 80);
        let b = mk(2, 90, 1000, 200);
        run_all(&a, &b);
    }

    #[test]
    fn joins_with_ties_and_points() {
        let a = vec![
            IntervalRecord {
                id: 0,
                st: 5,
                end: 5,
            },
            IntervalRecord {
                id: 1,
                st: 5,
                end: 10,
            },
            IntervalRecord {
                id: 2,
                st: 0,
                end: 4,
            },
        ];
        let b = vec![
            IntervalRecord {
                id: 0,
                st: 5,
                end: 7,
            },
            IntervalRecord {
                id: 1,
                st: 10,
                end: 12,
            },
            IntervalRecord {
                id: 2,
                st: 4,
                end: 5,
            },
        ];
        run_all(&a, &b);
    }

    #[test]
    fn empty_sides() {
        run_all(&[], &mk(3, 10, 100, 10));
        run_all(&mk(3, 10, 100, 10), &[]);
        run_all(&[], &[]);
    }

    #[test]
    fn self_join_contains_diagonal() {
        let a = mk(5, 50, 500, 60);
        let mut fs = Vec::new();
        forward_scan_join(&a, &a, |x, y| fs.push((x, y)));
        for r in &a {
            assert!(fs.contains(&(r.id, r.id)), "missing self pair {r:?}");
        }
    }
}
