//! The Timeline index (Kaufmann et al., SAP HANA) — the versioned-data
//! access method discussed in Section 6.2 of the temporal-IR paper.
//!
//! An *event list* holds one `(time, id, is_start)` entry per interval
//! endpoint, sorted by time; *checkpoints* materialize the full set of
//! active intervals every `checkpoint_every` events. A range query
//! reconstructs the active set at `q.st` from the nearest checkpoint plus
//! a replay, then appends every interval starting inside `(q.st, q.end]`.

use std::collections::HashSet;

use crate::IntervalRecord;

#[derive(Debug, Clone, Copy)]
struct Event {
    /// Event time: the start, or `end + 1` for expiry (closed intervals).
    time: u64,
    id: u32,
    is_start: bool,
}

#[derive(Debug, Clone)]
struct Checkpoint {
    /// Index into the event list this checkpoint reflects (all events
    /// `< pos` applied).
    pos: usize,
    /// Sorted ids active after applying those events.
    active: Vec<u32>,
}

/// The timeline index.
#[derive(Debug, Clone)]
pub struct TimelineIndex {
    events: Vec<Event>,
    checkpoints: Vec<Checkpoint>,
    len: usize,
}

/// Default checkpoint spacing.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 1024;

impl TimelineIndex {
    /// Builds with the default checkpoint spacing.
    pub fn build(records: &[IntervalRecord]) -> Self {
        Self::build_with_checkpoints(records, DEFAULT_CHECKPOINT_EVERY)
    }

    /// Builds with a checkpoint every `checkpoint_every` events.
    pub fn build_with_checkpoints(records: &[IntervalRecord], checkpoint_every: usize) -> Self {
        assert!(checkpoint_every >= 1);
        let mut events = Vec::with_capacity(records.len() * 2);
        for r in records {
            events.push(Event {
                time: r.st,
                id: r.id,
                is_start: true,
            });
            events.push(Event {
                time: r.end.saturating_add(1),
                id: r.id,
                is_start: false,
            });
        }
        // Expiries before starts at equal times so that a closed interval
        // ending at t-1 is inactive at t even if another starts at t.
        events.sort_unstable_by_key(|e| (e.time, e.is_start, e.id));

        let mut checkpoints = Vec::new();
        let mut active: HashSet<u32> = HashSet::new();
        for (i, e) in events.iter().enumerate() {
            if i % checkpoint_every == 0 {
                let mut snapshot: Vec<u32> = active.iter().copied().collect();
                snapshot.sort_unstable();
                checkpoints.push(Checkpoint {
                    pos: i,
                    active: snapshot,
                });
            }
            if e.is_start {
                active.insert(e.id);
            } else {
                active.remove(&e.id);
            }
        }
        TimelineIndex {
            events,
            checkpoints,
            len: records.len(),
        }
    }

    /// All ids of intervals overlapping `[q_st, q_end]` (inclusive).
    pub fn range_query(&self, q_st: u64, q_end: u64) -> Vec<u32> {
        assert!(q_st <= q_end);
        // Everything active at q_st …
        let mut out = self.active_at(q_st);
        // … plus everything starting in (q_st, q_end].
        let from = self.events.partition_point(|e| e.time <= q_st);
        for e in &self.events[from..] {
            if e.time > q_end {
                break;
            }
            if e.is_start {
                out.push(e.id);
            }
        }
        out
    }

    /// Sorted-ish list of ids active at time `t` (unordered overall).
    fn active_at(&self, t: u64) -> Vec<u32> {
        // Closest checkpoint whose replay window ends at or before the
        // first event with time > t.
        let limit = self.events.partition_point(|e| e.time <= t);
        let ci = self
            .checkpoints
            .partition_point(|c| c.pos <= limit)
            .saturating_sub(1);
        let Some(chk) = self.checkpoints.get(ci) else {
            return Vec::new();
        };
        let mut active: HashSet<u32> = chk.active.iter().copied().collect();
        for e in &self.events[chk.pos..limit] {
            if e.is_start {
                active.insert(e.id);
            } else {
                active.remove(&e.id);
            }
        }
        active.into_iter().collect()
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<Event>()
            + self
                .checkpoints
                .iter()
                .map(|c| c.active.capacity() * 4 + std::mem::size_of::<Checkpoint>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_overlap;

    fn sample() -> Vec<IntervalRecord> {
        (0..300u32)
            .map(|i| {
                let st = (i as u64 * 2654435761) % 5_000;
                IntervalRecord {
                    id: i,
                    st,
                    end: st + (i as u64 * 13) % 400,
                }
            })
            .collect()
    }

    #[test]
    fn matches_oracle_for_various_checkpoint_spacings() {
        let recs = sample();
        for every in [1usize, 7, 64, 100_000] {
            let idx = TimelineIndex::build_with_checkpoints(&recs, every);
            for q_st in (0..5_500u64).step_by(131) {
                for w in [0u64, 5, 200, 3_000] {
                    let q_end = q_st + w;
                    let mut got = idx.range_query(q_st, q_end);
                    let n = got.len();
                    got.sort_unstable();
                    got.dedup();
                    assert_eq!(n, got.len(), "duplicates every={every} q=[{q_st},{q_end}]");
                    assert_eq!(
                        got,
                        brute_force_overlap(&recs, q_st, q_end),
                        "every={every} q=[{q_st},{q_end}]"
                    );
                }
            }
        }
    }

    #[test]
    fn adjacent_intervals_at_boundaries() {
        // [0,4] and [5,9]: at t=5 only the second is active.
        let recs = vec![
            IntervalRecord {
                id: 0,
                st: 0,
                end: 4,
            },
            IntervalRecord {
                id: 1,
                st: 5,
                end: 9,
            },
        ];
        let idx = TimelineIndex::build(&recs);
        assert_eq!(idx.range_query(5, 5), vec![1]);
        assert_eq!(idx.range_query(4, 4), vec![0]);
        let mut both = idx.range_query(4, 5);
        both.sort_unstable();
        assert_eq!(both, vec![0, 1]);
    }

    #[test]
    fn empty_index() {
        let idx = TimelineIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(idx.range_query(0, 100).is_empty());
    }

    #[test]
    fn more_checkpoints_more_space() {
        let recs = sample();
        let sparse = TimelineIndex::build_with_checkpoints(&recs, 100_000);
        let dense = TimelineIndex::build_with_checkpoints(&recs, 4);
        assert!(dense.size_bytes() > sparse.size_bytes());
    }
}
