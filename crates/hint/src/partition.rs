//! Partition payload of the plain interval HINT: four subdivisions stored
//! as structures of arrays.
//!
//! The layout realizes three of the HINT paper's optimizations at once:
//!
//! * **subdivisions** — originals/replicas × ends-inside/ends-after;
//! * **storage optimization** — each subdivision keeps only the endpoint
//!   arrays that some query may compare (`O_in`: both, `O_aft`: start,
//!   `R_in`: end, `R_aft`: neither);
//! * **cache-miss optimization** — ids live in their own array, so
//!   comparison-free divisions are reported without touching endpoints.

use crate::layout::{refine_mode, CheckMode, DivisionKind};

/// Tombstone marker: deleted entries have this bit set in their stored id.
/// Object ids must therefore be `< 2^31`.
pub const TOMBSTONE: u32 = 1 << 31;

/// How the entries inside each subdivision are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DivisionOrder {
    /// Each subdivision uses the sort order that benefits its own
    /// comparisons: `O_in`/`O_aft` ascending by start, `R_in` descending by
    /// end (`R_aft` needs no order). Enables early-terminating scans.
    #[default]
    Beneficial,
    /// All subdivisions ascending by object id. Required by the merge-sort
    /// intersection strategies of the paper (Algorithm 4); range scans
    /// degrade to full filters.
    ById,
    /// Insertion order; the "unoptimized" baseline.
    Insertion,
}

/// One subdivision: parallel arrays of ids and (optionally elided)
/// endpoints.
#[derive(Debug, Clone, Default)]
pub struct Division {
    pub(crate) ids: Vec<u32>,
    pub(crate) sts: Vec<u64>,
    pub(crate) ends: Vec<u64>,
    /// Number of tombstoned entries; while zero, comparison-free scans
    /// copy the id array wholesale instead of branching per entry.
    pub(crate) dead: u32,
}

/// A read-only view of a division handed to composite indexes.
#[derive(Debug, Clone, Copy)]
pub struct DivisionView<'a> {
    /// Stored object ids; entries with the [`TOMBSTONE`] bit are deleted.
    pub ids: &'a [u32],
    /// Interval starts, or an empty slice if elided by the storage
    /// optimization (never needed when elided).
    pub sts: &'a [u64],
    /// Interval ends, or an empty slice if elided.
    pub ends: &'a [u64],
    /// Which subdivision this is.
    pub kind: DivisionKind,
    /// Hierarchy level of the partition holding this division.
    pub level: u32,
    /// Partition index within the level.
    pub j: u32,
}

impl Division {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Inserts `(id, st, end)` keeping the configured order. `keep_st` /
    /// `keep_end` implement the storage optimization.
    pub(crate) fn insert(
        &mut self,
        id: u32,
        st: u64,
        end: u64,
        order: DivisionOrder,
        kind: DivisionKind,
        keep_st: bool,
        keep_end: bool,
    ) {
        let pos = match order {
            DivisionOrder::Insertion => self.ids.len(),
            DivisionOrder::ById => self.ids.partition_point(|&x| (x & !TOMBSTONE) <= id),
            DivisionOrder::Beneficial => match sort_key(kind) {
                SortKey::StAsc => self.sts.partition_point(|&x| x <= st),
                SortKey::EndDesc => self.ends.partition_point(|&x| x >= end),
                SortKey::Unordered => self.ids.len(),
            },
        };
        self.ids.insert(pos, id);
        if keep_st {
            self.sts.insert(pos, st);
        }
        if keep_end {
            self.ends.insert(pos, end);
        }
    }

    /// Marks the entry for `id` as deleted; returns true if found alive.
    pub(crate) fn tombstone(&mut self, id: u32) -> bool {
        // Divisions are small; a linear probe over the dense id array is
        // the same locate-and-mark cost the paper's logical deletes pay.
        for slot in self.ids.iter_mut() {
            if *slot == id {
                *slot |= TOMBSTONE;
                self.dead += 1;
                return true;
            }
        }
        false
    }

    /// Appends all live ids whose endpoints satisfy `mode` to `out`.
    ///
    /// `mode` must already be refined for this division's kind, so elided
    /// endpoint arrays are never consulted.
    pub(crate) fn query_into(
        &self,
        mode: CheckMode,
        kind: DivisionKind,
        order: DivisionOrder,
        q_st: u64,
        q_end: u64,
        out: &mut Vec<u32>,
    ) {
        let clean = self.dead == 0;
        match mode {
            CheckMode::None => {
                if clean {
                    out.extend_from_slice(&self.ids);
                } else {
                    out.extend(self.ids.iter().copied().filter(|id| id & TOMBSTONE == 0));
                }
            }
            CheckMode::Start => {
                debug_assert_eq!(self.sts.len(), self.ids.len());
                if order == DivisionOrder::Beneficial && sort_key(kind) == SortKey::StAsc {
                    // Spot check (O(1)): full sortedness is tir-check's
                    // job; an unsorted array still trips here early.
                    debug_assert!(
                        self.sts.windows(2).take(32).all(|w| w[0] <= w[1]),
                        "StAsc prefix scan requires starts sorted ascending"
                    );
                    let hi = self.sts.partition_point(|&st| st <= q_end);
                    if clean {
                        out.extend_from_slice(&self.ids[..hi]);
                    } else {
                        out.extend(
                            self.ids[..hi]
                                .iter()
                                .copied()
                                .filter(|id| id & TOMBSTONE == 0),
                        );
                    }
                } else {
                    for (i, &st) in self.sts.iter().enumerate() {
                        if st <= q_end && self.ids[i] & TOMBSTONE == 0 {
                            out.push(self.ids[i]);
                        }
                    }
                }
            }
            CheckMode::End => {
                debug_assert_eq!(self.ends.len(), self.ids.len());
                if order == DivisionOrder::Beneficial && sort_key(kind) == SortKey::EndDesc {
                    debug_assert!(
                        self.ends.windows(2).take(32).all(|w| w[0] >= w[1]),
                        "EndDesc prefix scan requires ends sorted descending"
                    );
                    let hi = self.ends.partition_point(|&end| end >= q_st);
                    if clean {
                        out.extend_from_slice(&self.ids[..hi]);
                    } else {
                        out.extend(
                            self.ids[..hi]
                                .iter()
                                .copied()
                                .filter(|id| id & TOMBSTONE == 0),
                        );
                    }
                } else {
                    for (i, &end) in self.ends.iter().enumerate() {
                        if end >= q_st && self.ids[i] & TOMBSTONE == 0 {
                            out.push(self.ids[i]);
                        }
                    }
                }
            }
            CheckMode::Both => {
                debug_assert_eq!(self.sts.len(), self.ids.len());
                debug_assert_eq!(self.ends.len(), self.ids.len());
                if order == DivisionOrder::Beneficial && sort_key(kind) == SortKey::StAsc {
                    // Spot check (O(1)): full sortedness is tir-check's
                    // job; an unsorted array still trips here early.
                    debug_assert!(
                        self.sts.windows(2).take(32).all(|w| w[0] <= w[1]),
                        "StAsc prefix scan requires starts sorted ascending"
                    );
                    let hi = self.sts.partition_point(|&st| st <= q_end);
                    for i in 0..hi {
                        if self.ends[i] >= q_st && self.ids[i] & TOMBSTONE == 0 {
                            out.push(self.ids[i]);
                        }
                    }
                } else {
                    for i in 0..self.ids.len() {
                        if self.sts[i] <= q_end
                            && self.ends[i] >= q_st
                            && self.ids[i] & TOMBSTONE == 0
                        {
                            out.push(self.ids[i]);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn size_bytes(&self) -> usize {
        self.ids.capacity() * 4 + self.sts.capacity() * 8 + self.ends.capacity() * 8
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
pub(crate) enum SortKey {
    StAsc,
    EndDesc,
    Unordered,
}

/// The beneficial sort key for a subdivision: starts ascending where
/// `i.st <= q.end` prefixes are scanned, ends descending where
/// `q.st <= i.end` prefixes are scanned.
pub(crate) fn sort_key(kind: DivisionKind) -> SortKey {
    match kind {
        DivisionKind::OrigIn | DivisionKind::OrigAft => SortKey::StAsc,
        DivisionKind::ReplIn => SortKey::EndDesc,
        DivisionKind::ReplAft => SortKey::Unordered,
    }
}

/// Which endpoint arrays a subdivision materializes under the storage
/// optimization: `(keep_st, keep_end)`.
pub(crate) fn kept_endpoints(kind: DivisionKind, storage_opt: bool) -> (bool, bool) {
    if !storage_opt {
        return (true, true);
    }
    match kind {
        DivisionKind::OrigIn => (true, true),
        DivisionKind::OrigAft => (true, false),
        DivisionKind::ReplIn => (false, true),
        DivisionKind::ReplAft => (false, false),
    }
}

/// A HINT partition: the four subdivisions.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    pub(crate) orig_in: Division,
    pub(crate) orig_aft: Division,
    pub(crate) repl_in: Division,
    pub(crate) repl_aft: Division,
}

impl Partition {
    #[inline]
    pub(crate) fn division_mut(&mut self, kind: DivisionKind) -> &mut Division {
        match kind {
            DivisionKind::OrigIn => &mut self.orig_in,
            DivisionKind::OrigAft => &mut self.orig_aft,
            DivisionKind::ReplIn => &mut self.repl_in,
            DivisionKind::ReplAft => &mut self.repl_aft,
        }
    }

    #[inline]
    pub(crate) fn division(&self, kind: DivisionKind) -> &Division {
        match kind {
            DivisionKind::OrigIn => &self.orig_in,
            DivisionKind::OrigAft => &self.orig_aft,
            DivisionKind::ReplIn => &self.repl_in,
            DivisionKind::ReplAft => &self.repl_aft,
        }
    }

    /// Runs the partition-level query: `orig_mode` applies to both original
    /// subdivisions (after refinement); `repl_mode` likewise for replicas,
    /// with `None` meaning replicas are skipped entirely.
    pub(crate) fn query_into(
        &self,
        orig_mode: CheckMode,
        repl_mode: Option<CheckMode>,
        order: DivisionOrder,
        q_st: u64,
        q_end: u64,
        out: &mut Vec<u32>,
    ) {
        use DivisionKind::*;
        self.orig_in.query_into(
            refine_mode(orig_mode, OrigIn),
            OrigIn,
            order,
            q_st,
            q_end,
            out,
        );
        self.orig_aft.query_into(
            refine_mode(orig_mode, OrigAft),
            OrigAft,
            order,
            q_st,
            q_end,
            out,
        );
        if let Some(rm) = repl_mode {
            self.repl_in
                .query_into(refine_mode(rm, ReplIn), ReplIn, order, q_st, q_end, out);
            self.repl_aft
                .query_into(refine_mode(rm, ReplAft), ReplAft, order, q_st, q_end, out);
        }
    }

    pub(crate) fn size_bytes(&self) -> usize {
        self.orig_in.size_bytes()
            + self.orig_aft.size_bytes()
            + self.repl_in.size_bytes()
            + self.repl_aft.size_bytes()
    }

    pub(crate) fn len(&self) -> usize {
        self.orig_in.len() + self.orig_aft.len() + self.repl_in.len() + self.repl_aft.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beneficial_insert_keeps_st_sorted() {
        let mut d = Division::default();
        for (id, st) in [(1u32, 50u64), (2, 10), (3, 30), (4, 70), (5, 30)] {
            d.insert(
                id,
                st,
                st + 5,
                DivisionOrder::Beneficial,
                DivisionKind::OrigIn,
                true,
                true,
            );
        }
        assert!(d.sts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn beneficial_insert_keeps_end_desc_sorted() {
        let mut d = Division::default();
        for (id, end) in [(1u32, 50u64), (2, 90), (3, 30), (4, 70)] {
            d.insert(
                id,
                0,
                end,
                DivisionOrder::Beneficial,
                DivisionKind::ReplIn,
                false,
                true,
            );
        }
        assert!(d.ends.windows(2).all(|w| w[0] >= w[1]));
        assert!(d.sts.is_empty(), "storage optimization elided starts");
    }

    #[test]
    fn by_id_insert_keeps_ids_sorted() {
        let mut d = Division::default();
        for id in [5u32, 1, 3, 2, 4] {
            d.insert(
                id,
                0,
                0,
                DivisionOrder::ById,
                DivisionKind::OrigIn,
                true,
                true,
            );
        }
        assert_eq!(d.ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn tombstone_hides_from_queries() {
        let mut d = Division::default();
        d.insert(
            7,
            1,
            9,
            DivisionOrder::Insertion,
            DivisionKind::OrigIn,
            true,
            true,
        );
        d.insert(
            8,
            2,
            9,
            DivisionOrder::Insertion,
            DivisionKind::OrigIn,
            true,
            true,
        );
        assert!(d.tombstone(7));
        assert!(!d.tombstone(7), "already dead");
        let mut out = Vec::new();
        d.query_into(
            CheckMode::None,
            DivisionKind::OrigIn,
            DivisionOrder::Insertion,
            0,
            10,
            &mut out,
        );
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn start_mode_prefix_scan_matches_filter() {
        let mut sorted = Division::default();
        let mut unsorted = Division::default();
        let entries = [(1u32, 5u64), (2, 15), (3, 25), (4, 35), (5, 45)];
        for &(id, st) in &entries {
            sorted.insert(
                id,
                st,
                100,
                DivisionOrder::Beneficial,
                DivisionKind::OrigAft,
                true,
                false,
            );
            unsorted.insert(
                id,
                st,
                100,
                DivisionOrder::Insertion,
                DivisionKind::OrigAft,
                true,
                false,
            );
        }
        for q_end in [0u64, 5, 20, 44, 45, 99] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            sorted.query_into(
                CheckMode::Start,
                DivisionKind::OrigAft,
                DivisionOrder::Beneficial,
                0,
                q_end,
                &mut a,
            );
            unsorted.query_into(
                CheckMode::Start,
                DivisionKind::OrigAft,
                DivisionOrder::Insertion,
                0,
                q_end,
                &mut b,
            );
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "q_end={q_end}");
        }
    }
}
