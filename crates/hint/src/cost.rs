//! A data-driven approximation of the HINT cost model for choosing the
//! number of levels `m`.
//!
//! The published model balances two costs of a range query: the number of
//! partitions touched (grows with `m`) and the number of endpoint
//! comparisons performed in the four boundary partitions (shrinks with
//! `m`, as partitions get finer). We estimate both from a sample of the
//! input: replication is measured exactly by running the assignment
//! procedure, and boundary-partition sizes are taken as the average number
//! of entries per materializable partition.

use crate::domain::Domain;
use crate::layout::Layout;
use crate::IntervalRecord;

/// Default query extent assumed by the model, as a fraction of the domain;
/// the paper's default workload uses 0.1%.
pub const DEFAULT_QUERY_EXTENT: f64 = 0.001;

/// Upper bound on `m` considered by [`choose_m`].
pub const MAX_MODEL_M: u32 = 24;

/// Estimated query cost (in abstract "entry touches") for a given `m`.
pub fn estimate_cost(
    records: &[IntervalRecord],
    domain_min: u64,
    domain_max: u64,
    m: u32,
    query_extent: f64,
) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let domain = Domain::new(domain_min, domain_max.max(domain_min), m);
    let layout = Layout::new(m);

    // Sample up to 4K intervals to measure the replication factor exactly.
    let step = (records.len() / 4096).max(1);
    let mut assigned = 0usize;
    let mut sampled = 0usize;
    for r in records.iter().step_by(step) {
        let a = domain.cell(r.st);
        let b = domain.cell(r.end);
        layout.assign(a, b, |_, _, _| assigned += 1);
        sampled += 1;
    }
    let avg_assigned = assigned as f64 / sampled as f64;
    let total_entries = avg_assigned * records.len() as f64;

    // Partition-visit cost: at each level, the walk touches
    // min(2^l, extent * 2^l + 2) partitions.
    let mut visits = 0.0;
    for level in 0..=m {
        let parts_at_level = (1u64 << level) as f64;
        visits += parts_at_level.min(query_extent * parts_at_level + 2.0);
    }

    // Comparison cost: about four boundary partitions require endpoint
    // comparisons; each holds on average total_entries / #partitions
    // entries (bottom-heavy in practice, so this underestimates slightly
    // for tiny m, which the visit term compensates).
    let total_parts = (1u64 << (m + 1)) as f64 - 1.0;
    let avg_partition = total_entries / total_parts.min(total_entries.max(1.0));
    let comparisons = 4.0 * avg_partition;

    visits + comparisons
}

/// Chooses `m` minimizing [`estimate_cost`] for the default query extent.
///
/// The search space is capped both by [`MAX_MODEL_M`] and by the number of
/// distinct raw values in the domain (finer partitioning than the raw
/// resolution is useless).
pub fn choose_m(records: &[IntervalRecord], domain_min: u64, domain_max: u64) -> u32 {
    choose_m_for_extent(records, domain_min, domain_max, DEFAULT_QUERY_EXTENT)
}

/// As [`choose_m`] with an explicit expected query extent fraction.
pub fn choose_m_for_extent(
    records: &[IntervalRecord],
    domain_min: u64,
    domain_max: u64,
    query_extent: f64,
) -> u32 {
    if records.is_empty() {
        return 1;
    }
    let span = domain_max.saturating_sub(domain_min);
    let domain_bits = 64 - span.leading_zeros();
    let hi = MAX_MODEL_M.min(domain_bits.max(1));
    let mut best = (f64::INFINITY, 1u32);
    for m in 1..=hi {
        let c = estimate_cost(records, domain_min, domain_max, m, query_extent);
        if c < best.0 {
            best = (c, m);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, span: u64, len: u64) -> Vec<IntervalRecord> {
        (0..n)
            .map(|i| {
                let st = (i * 2654435761) % (span - len);
                IntervalRecord {
                    id: i as u32,
                    st,
                    end: st + len,
                }
            })
            .collect()
    }

    #[test]
    fn larger_inputs_prefer_larger_m() {
        let small = uniform(100, 1 << 20, 100);
        let large = uniform(100_000, 1 << 20, 100);
        let m_small = choose_m(&small, 0, 1 << 20);
        let m_large = choose_m(&large, 0, 1 << 20);
        assert!(m_large >= m_small, "{m_large} vs {m_small}");
    }

    #[test]
    fn respects_domain_resolution() {
        let recs = uniform(10_000, 16, 2);
        let m = choose_m(&recs, 0, 15);
        assert!(m <= 4, "m={m} finer than a 16-value domain");
    }

    #[test]
    fn empty_input_is_fine() {
        assert_eq!(choose_m(&[], 0, 100), 1);
    }

    #[test]
    fn cost_is_finite_and_positive() {
        let recs = uniform(1000, 1 << 16, 50);
        for m in 1..=16 {
            let c = estimate_cost(&recs, 0, 1 << 16, m, 0.001);
            assert!(c.is_finite() && c > 0.0);
        }
    }
}
