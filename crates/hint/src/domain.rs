//! Discretization of a raw timestamp domain onto HINT's `[0, 2^m - 1]` grid.
//!
//! HINT assigns intervals to partitions of a hierarchically divided
//! *discrete* domain, but endpoint comparisons are always performed on the
//! raw `u64` timestamps. The mapping implemented here is monotone
//! (`t1 <= t2` implies `cell(t1) <= cell(t2)`), which is exactly the
//! property required for HINT's "no comparisons needed in intermediate
//! partitions" guarantee to carry over to raw-endpoint comparisons.

/// A discretized time domain: raw timestamps in `[min, max]` are mapped to
/// cells `0..2^m` by subtracting `min` and right-shifting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    min: u64,
    max: u64,
    m: u32,
    shift: u32,
}

impl Domain {
    /// Maximum supported number of levels minus one; cells are `u32`.
    pub const MAX_M: u32 = 30;

    /// Creates a domain covering raw timestamps `[min, max]` with `2^m`
    /// cells at the bottom level.
    ///
    /// # Panics
    /// Panics if `min > max` or `m > Domain::MAX_M`.
    pub fn new(min: u64, max: u64, m: u32) -> Self {
        assert!(min <= max, "empty domain: min {min} > max {max}");
        assert!(m <= Self::MAX_M, "m={m} exceeds MAX_M={}", Self::MAX_M);
        let span = max - min; // last raw offset in the domain
        let bits = 64 - span.leading_zeros(); // bits needed to address `span`
        let shift = bits.saturating_sub(m);
        Domain { min, max, m, shift }
    }

    /// The number of levels is `m + 1` (levels `0..=m`).
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Smallest raw timestamp covered.
    #[inline]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest raw timestamp covered.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Maps a raw timestamp to its bottom-level cell, clamping timestamps
    /// outside `[min, max]` to the domain borders (queries may legitimately
    /// extend past the indexed span).
    #[inline]
    pub fn cell(&self, t: u64) -> u32 {
        let t = t.clamp(self.min, self.max);
        // analyze:allow(unguarded-cast): shift is chosen at build time so the cell count fits u32
        ((t - self.min) >> self.shift) as u32
    }

    /// Number of cells at the bottom level.
    #[inline]
    pub fn num_cells(&self) -> u32 {
        1u32 << self.m
    }

    /// Last bottom-level cell covered by partition `j` of level `level`.
    #[inline]
    pub fn partition_last_cell(&self, level: u32, j: u32) -> u32 {
        debug_assert!(level <= self.m);
        let width = 1u32 << (self.m - level);
        j * width + (width - 1)
    }

    /// First bottom-level cell covered by partition `j` of level `level`.
    #[inline]
    pub fn partition_first_cell(&self, level: u32, j: u32) -> u32 {
        debug_assert!(level <= self.m);
        j << (self.m - level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_domain_fits() {
        let d = Domain::new(0, 7, 3);
        for t in 0..=7 {
            assert_eq!(d.cell(t), t as u32);
        }
        assert_eq!(d.num_cells(), 8);
    }

    #[test]
    fn clamps_out_of_range() {
        let d = Domain::new(10, 17, 3);
        assert_eq!(d.cell(0), 0);
        assert_eq!(d.cell(10), 0);
        assert_eq!(d.cell(17), 7);
        assert_eq!(d.cell(1000), 7);
    }

    #[test]
    fn coarsens_large_domains() {
        let d = Domain::new(0, 1023, 3);
        assert_eq!(d.cell(0), 0);
        assert_eq!(d.cell(127), 0);
        assert_eq!(d.cell(128), 1);
        assert_eq!(d.cell(1023), 7);
    }

    #[test]
    fn monotone() {
        let d = Domain::new(3, 1_000_000, 10);
        let mut prev = 0;
        for t in (3..=1_000_000).step_by(997) {
            let c = d.cell(t);
            assert!(c >= prev);
            assert!(c < d.num_cells());
            prev = c;
        }
    }

    #[test]
    fn partition_cells() {
        let d = Domain::new(0, 15, 4);
        assert_eq!(d.partition_first_cell(4, 5), 5);
        assert_eq!(d.partition_last_cell(4, 5), 5);
        assert_eq!(d.partition_first_cell(2, 1), 4);
        assert_eq!(d.partition_last_cell(2, 1), 7);
        assert_eq!(d.partition_first_cell(0, 0), 0);
        assert_eq!(d.partition_last_cell(0, 0), 15);
    }

    #[test]
    fn single_point_domain() {
        let d = Domain::new(42, 42, 0);
        assert_eq!(d.cell(42), 0);
        assert_eq!(d.num_cells(), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_domain() {
        let _ = Domain::new(5, 4, 3);
    }
}
