//! # tir-hint
//!
//! Interval indexing substrates for temporal information retrieval:
//!
//! * [`Hint`] — the state-of-the-art **H**ierarchical index for
//!   **int**ervals of Christodoulou, Bouros & Mamoulis (SIGMOD 2022), with
//!   the subdivision, beneficial-sorting, storage, sparse-partition and
//!   cache-miss optimizations, plus incremental inserts and logical
//!   deletes;
//! * [`Grid1D`] — the flat 1D-grid underlying the Slicing technique;
//! * [`IntervalTree`], [`SegmentTree`], [`TimelineIndex`],
//!   [`PeriodIndex`] — the classical baselines of the paper's related
//!   work (Section 6.2);
//! * [`allen`] — Allen-relationship queries on HINT;
//! * [`join`] — interval overlap joins (plane sweep, grid, index-NL);
//! * [`layout`] — the reusable partition-assignment / relevant-partition
//!   machinery that composite indexes (irHINT) build on.
//!
//! All indexes answer *range (overlap) queries* over closed intervals:
//! given `[q_st, q_end]`, return every stored interval `i` with
//! `i.st <= q_end && q_st <= i.end`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allen;
pub mod cost;
pub mod domain;
pub mod grid;
pub mod index;
pub mod interval_tree;
pub mod join;
pub mod layout;
pub mod partition;
pub mod period_index;
pub mod segment_tree;
pub mod timeline;

pub use allen::{brute_force_allen, AllenRelation};
pub use domain::Domain;
pub use grid::Grid1D;
pub use index::{Hint, HintConfig};
pub use interval_tree::IntervalTree;
pub use join::{brute_force_join, forward_scan_join, grid_join, hint_inl_join};
pub use layout::{CheckMode, DivisionKind, Layout};
pub use partition::{DivisionOrder, DivisionView, TOMBSTONE};
pub use period_index::PeriodIndex;
pub use segment_tree::SegmentTree;
pub use timeline::TimelineIndex;

/// An interval with an attached object id — the unit every index in this
/// crate stores.
///
/// Intervals are closed: `[st, end]` with `st <= end`. Ids must be smaller
/// than `2^31`; the high bit is reserved for tombstones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntervalRecord {
    /// Object identifier (`< 2^31`).
    pub id: u32,
    /// Inclusive start timestamp.
    pub st: u64,
    /// Inclusive end timestamp.
    pub end: u64,
}

impl IntervalRecord {
    /// Creates a record, checking the interval invariant.
    pub fn new(id: u32, st: u64, end: u64) -> Self {
        assert!(st <= end, "invalid interval [{st}, {end}]");
        assert!(id & TOMBSTONE == 0, "id {id} uses the tombstone bit");
        IntervalRecord { id, st, end }
    }

    /// Inclusive-overlap test against a query range.
    #[inline]
    pub fn overlaps(&self, q_st: u64, q_end: u64) -> bool {
        self.st <= q_end && q_st <= self.end
    }
}

/// Reference result: ids of all records overlapping `[q_st, q_end]`,
/// sorted ascending. Used as the oracle throughout the test suites.
pub fn brute_force_overlap(records: &[IntervalRecord], q_st: u64, q_end: u64) -> Vec<u32> {
    let mut out: Vec<u32> = records
        .iter()
        .filter(|r| r.overlaps(q_st, q_end))
        .map(|r| r.id)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_inclusive() {
        let r = IntervalRecord::new(1, 5, 10);
        assert!(r.overlaps(10, 20));
        assert!(r.overlaps(0, 5));
        assert!(r.overlaps(7, 7));
        assert!(!r.overlaps(11, 20));
        assert!(!r.overlaps(0, 4));
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_interval() {
        let _ = IntervalRecord::new(1, 10, 5);
    }
}
