//! Property tests for the extension modules: Allen-relationship queries,
//! interval joins, and the additional baselines (segment tree, timeline,
//! period index) against their oracles.

use proptest::prelude::*;
use tir_hint::allen::brute_force_allen;
use tir_hint::{
    brute_force_join, brute_force_overlap, forward_scan_join, grid_join, hint_inl_join,
    AllenRelation, DivisionOrder, Hint, HintConfig, IntervalRecord, PeriodIndex, SegmentTree,
    TimelineIndex,
};

fn arb_records(max_len: usize, domain: u64) -> impl Strategy<Value = Vec<IntervalRecord>> {
    prop::collection::vec((0..domain, 0..domain), 0..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| IntervalRecord {
                id: i as u32,
                st: a.min(b),
                end: a.max(b),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allen_queries_match_oracle(
        recs in arb_records(80, 300),
        (qa, qb) in (0u64..320, 0u64..320),
        m in 0u32..8,
    ) {
        let (q_st, q_end) = (qa.min(qb), qa.max(qb));
        let cfg = HintConfig { m: Some(m), order: DivisionOrder::Beneficial, storage_opt: false };
        let hint = Hint::build(&recs, cfg);
        for rel in AllenRelation::ALL {
            let mut got = hint.allen_query(rel, q_st, q_end);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            prop_assert_eq!(n, got.len(), "{:?} produced duplicates", rel);
            prop_assert_eq!(got, brute_force_allen(&recs, rel, q_st, q_end), "{:?}", rel);
        }
    }

    #[test]
    fn joins_match_oracle(
        a in arb_records(60, 400),
        b in arb_records(60, 400),
        k in 1u32..20,
    ) {
        let want = brute_force_join(&a, &b);
        let mut fs = Vec::new();
        forward_scan_join(&a, &b, |x, y| fs.push((x, y)));
        fs.sort_unstable();
        prop_assert_eq!(&fs, &want, "forward scan");

        let mut gj = Vec::new();
        grid_join(&a, &b, k, |x, y| gj.push((x, y)));
        let n = gj.len();
        gj.sort_unstable();
        gj.dedup();
        prop_assert_eq!(n, gj.len(), "grid join duplicates");
        prop_assert_eq!(&gj, &want, "grid join");

        let hint = Hint::build(&b, HintConfig::with_m(5));
        let mut inl = Vec::new();
        hint_inl_join(&a, &hint, |x, y| inl.push((x, y)));
        inl.sort_unstable();
        prop_assert_eq!(&inl, &want, "hint INL join");
    }

    #[test]
    fn segment_tree_stabbing_matches_oracle(
        recs in arb_records(80, 500),
        t in 0u64..550,
    ) {
        let tree = SegmentTree::build(&recs);
        let mut got = tree.stab_query(t);
        let n = got.len();
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(n, got.len());
        prop_assert_eq!(got, brute_force_overlap(&recs, t, t));
    }

    #[test]
    fn timeline_matches_oracle(
        recs in arb_records(80, 500),
        (qa, qb) in (0u64..550, 0u64..550),
        every in 1usize..40,
    ) {
        let (q_st, q_end) = (qa.min(qb), qa.max(qb));
        let idx = TimelineIndex::build_with_checkpoints(&recs, every);
        let mut got = idx.range_query(q_st, q_end);
        let n = got.len();
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(n, got.len());
        prop_assert_eq!(got, brute_force_overlap(&recs, q_st, q_end));
    }

    #[test]
    fn period_index_matches_oracle(
        recs in arb_records(80, 500),
        (qa, qb) in (0u64..550, 0u64..550),
        k in 1u32..20,
        (da, db) in (1u64..600, 1u64..600),
    ) {
        let (q_st, q_end) = (qa.min(qb), qa.max(qb));
        let (d_min, d_max) = (da.min(db), da.max(db));
        let idx = PeriodIndex::build(&recs, k);
        let mut got = idx.range_duration_query(q_st, q_end, d_min, d_max);
        got.sort_unstable();
        got.dedup();
        let want: Vec<u32> = brute_force_overlap(&recs, q_st, q_end)
            .into_iter()
            .filter(|&id| {
                let r = recs[id as usize];
                let dur = r.end - r.st + 1;
                dur >= d_min && dur <= d_max
            })
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn conventional_traversal_equals_bottom_up(
        recs in arb_records(80, 400),
        (qa, qb) in (0u64..420, 0u64..420),
        m in 0u32..8,
    ) {
        let (q_st, q_end) = (qa.min(qb), qa.max(qb));
        let hint = Hint::build(&recs, HintConfig::with_m(m));
        let mut a = hint.range_query(q_st, q_end);
        let mut b = hint.range_query_conventional(q_st, q_end);
        a.sort_unstable();
        b.sort_unstable();
        b.dedup();
        prop_assert_eq!(a, b);
    }
}
