//! Property-based tests: every interval index in the crate must agree with
//! the brute-force oracle on arbitrary inputs, configurations and queries.

use proptest::prelude::*;
use tir_hint::{
    brute_force_overlap, DivisionOrder, Grid1D, Hint, HintConfig, IntervalRecord, IntervalTree,
};

fn arb_records(max_len: usize, domain: u64) -> impl Strategy<Value = Vec<IntervalRecord>> {
    prop::collection::vec((0..domain, 0..domain), 0..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| IntervalRecord {
                id: i as u32,
                st: a.min(b),
                end: a.max(b),
            })
            .collect()
    })
}

fn arb_query(domain: u64) -> impl Strategy<Value = (u64, u64)> {
    (0..domain, 0..domain).prop_map(|(a, b)| (a.min(b), a.max(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hint_matches_oracle(
        recs in arb_records(120, 1000),
        queries in prop::collection::vec(arb_query(1100), 1..20),
        m in 0u32..10,
        order_pick in 0u8..3,
        storage_opt in any::<bool>(),
    ) {
        let order = match order_pick {
            0 => DivisionOrder::Beneficial,
            1 => DivisionOrder::ById,
            _ => DivisionOrder::Insertion,
        };
        let cfg = HintConfig { m: Some(m), order, storage_opt };
        let hint = Hint::build(&recs, cfg);
        for (qs, qe) in queries {
            let mut got = hint.range_query(qs, qe);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            prop_assert_eq!(n, got.len(), "duplicates");
            prop_assert_eq!(got, brute_force_overlap(&recs, qs, qe));
        }
    }

    #[test]
    fn hint_cost_model_config_matches_oracle(
        recs in arb_records(80, 100_000),
        queries in prop::collection::vec(arb_query(100_000), 1..10),
    ) {
        let hint = Hint::build(&recs, HintConfig::default());
        for (qs, qe) in queries {
            let mut got = hint.range_query(qs, qe);
            got.sort_unstable();
            prop_assert_eq!(got, brute_force_overlap(&recs, qs, qe));
        }
    }

    #[test]
    fn hint_insert_delete_matches_oracle(
        base in arb_records(60, 500),
        extra in arb_records(30, 500),
        del_mask in prop::collection::vec(any::<bool>(), 60),
        (qs, qe) in arb_query(600),
    ) {
        // Re-id the extras so ids stay unique.
        let extra: Vec<IntervalRecord> = extra
            .iter()
            .enumerate()
            .map(|(i, r)| IntervalRecord { id: (1000 + i) as u32, ..*r })
            .collect();
        let mut hint = Hint::build_with_domain(&base, 0, 600, HintConfig::with_m(6));
        for r in &extra {
            hint.insert(r);
        }
        let mut live: Vec<IntervalRecord> = base.iter().chain(extra.iter()).copied().collect();
        for (i, r) in base.iter().enumerate() {
            if *del_mask.get(i).unwrap_or(&false) {
                prop_assert!(hint.delete(r));
                live.retain(|x| x.id != r.id);
            }
        }
        let mut got = hint.range_query(qs, qe);
        got.sort_unstable();
        prop_assert_eq!(got, brute_force_overlap(&live, qs, qe));
    }

    #[test]
    fn grid_matches_oracle(
        recs in arb_records(100, 1000),
        (qs, qe) in arb_query(1100),
        k in 1u32..40,
    ) {
        let grid = Grid1D::build(&recs, k);
        let mut got = grid.range_query(qs, qe);
        let n = got.len();
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(n, got.len(), "duplicates");
        prop_assert_eq!(got, brute_force_overlap(&recs, qs, qe));
    }

    #[test]
    fn interval_tree_matches_oracle(
        recs in arb_records(100, 1000),
        (qs, qe) in arb_query(1100),
    ) {
        let tree = IntervalTree::build(&recs);
        let mut got = tree.range_query(qs, qe);
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(got, brute_force_overlap(&recs, qs, qe));
    }
}
