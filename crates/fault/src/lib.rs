//! # tir-fault
//!
//! Seeded, deterministic fault injection for the temporal-ir stack.
//!
//! The durable write path (`tir-persist`) and the serving stack
//! (`tir-serve`) call into a small set of named **fault sites** at the
//! exact points where the real world fails: just before a WAL record is
//! written, before an fsync, around a snapshot rename, when a worker
//! dequeues a batch, when a connection is about to answer. In production
//! nothing is installed and every probe is a single atomic load that
//! returns [`FaultAction::None`]. Under `tir chaos` (or a test), a
//! [`FaultPlan`] is [`install`]ed and each site visit is mapped — purely
//! and deterministically from `(seed, site, visit)` — to an injected
//! outcome: an I/O error shaped like ENOSPC/EIO, a short write, a stall,
//! or a dropped connection.
//!
//! Determinism is the point. A plan is a pure function of the site and a
//! per-site visit counter (reset on [`install`]), so replaying the same
//! workload against the same seed reproduces the same faults, and a
//! failing chaos schedule is re-runnable from its seed alone.
//!
//! The layer deliberately does **not** use feature gates: the release
//! `tir chaos` binary drives a real release-built server, so the probes
//! compile in everywhere and cost one relaxed-free atomic load when no
//! plan is installed.
//!
//! ```
//! use tir_fault::{FaultAction, FaultPlan, FaultSite, NoFaults};
//!
//! // The production path: a no-op plan, every site visit passes through.
//! let plan = NoFaults;
//! assert_eq!(plan.action(FaultSite::WalSync, 0), FaultAction::None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A named point in the stack where a fault can be injected.
///
/// I/O sites live in `tir-persist` (the durable write path); serving
/// sites live in `tir-serve` (workers, the applier, connections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `Wal::append`, before the record bytes reach the segment file.
    WalAppend,
    /// `Wal::sync`, before the segment fsync.
    WalSync,
    /// Snapshot write, before the temp file is written.
    SnapshotWrite,
    /// Snapshot publish, before the temp → final rename (a torn rename
    /// leaves the temp file behind and the old snapshot current).
    SnapshotRename,
    /// `TermLog::append`, before a new dictionary term is persisted.
    TermLogAppend,
    /// Query worker, once per dequeued batch (injected stall).
    WorkerStall,
    /// Epoch applier, once per applied batch (injected delay).
    ApplierDelay,
    /// Connection handler, once per request (injected disconnect).
    ConnDrop,
}

/// Number of distinct [`FaultSite`]s (size of the visit-counter table).
const SITE_COUNT: usize = 8;

impl FaultSite {
    /// Every site, in declaration order.
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::WalAppend,
        FaultSite::WalSync,
        FaultSite::SnapshotWrite,
        FaultSite::SnapshotRename,
        FaultSite::TermLogAppend,
        FaultSite::WorkerStall,
        FaultSite::ApplierDelay,
        FaultSite::ConnDrop,
    ];

    /// Stable lower-case name, used in injected error messages and logs.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WalAppend => "wal-append",
            FaultSite::WalSync => "wal-sync",
            FaultSite::SnapshotWrite => "snapshot-write",
            FaultSite::SnapshotRename => "snapshot-rename",
            FaultSite::TermLogAppend => "termlog-append",
            FaultSite::WorkerStall => "worker-stall",
            FaultSite::ApplierDelay => "applier-delay",
            FaultSite::ConnDrop => "conn-drop",
        }
    }

    fn idx(self) -> usize {
        match self {
            FaultSite::WalAppend => 0,
            FaultSite::WalSync => 1,
            FaultSite::SnapshotWrite => 2,
            FaultSite::SnapshotRename => 3,
            FaultSite::TermLogAppend => 4,
            FaultSite::WorkerStall => 5,
            FaultSite::ApplierDelay => 6,
            FaultSite::ConnDrop => 7,
        }
    }
}

/// What a plan decided for one visit of one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: the site proceeds normally.
    None,
    /// Fail with an injected I/O error (ENOSPC/EIO-shaped).
    Error,
    /// Write a truncated prefix of the payload, then fail (torn write).
    /// Only meaningful at [`FaultSite::WalAppend`]; other sites treat it
    /// like [`FaultAction::Error`].
    ShortWrite,
    /// Sleep this many milliseconds, then proceed normally.
    Stall(u64),
    /// Drop the connection without answering. Only meaningful at
    /// [`FaultSite::ConnDrop`]; other sites treat it like
    /// [`FaultAction::Error`].
    Drop,
}

/// A fault schedule: a **pure** function of `(site, visit)`.
///
/// `visit` is the zero-based count of probes at that site since the plan
/// was installed, so a plan must not keep interior mutability — purity is
/// what makes a schedule replayable from its seed.
pub trait FaultPlan: Send + Sync {
    /// Decide the outcome of the `visit`-th probe of `site`.
    fn action(&self, site: FaultSite, visit: u64) -> FaultAction;
}

/// The production plan: never injects anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultPlan for NoFaults {
    fn action(&self, _site: FaultSite, _visit: u64) -> FaultAction {
        FaultAction::None
    }
}

/// splitmix64 finalizer: the workhorse hash behind every seeded decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash of `(seed, site, visit)` — the single source of randomness.
fn h(seed: u64, site: FaultSite, visit: u64) -> u64 {
    mix(mix(seed ^ mix(site.idx() as u64 + 1)).wrapping_add(visit))
}

/// A deterministic mixed-fault schedule derived from a single seed.
///
/// Each seed picks **at most one I/O fault** — a site from the durable
/// write path plus the visit number at which it fires (exactly once) —
/// because the server's answer to a durability failure is to degrade
/// permanently until restart, so a second I/O fault would never be
/// reached. Roughly one seed in eight schedules no I/O fault at all,
/// which keeps clean recovery paths in the test population. Serving
/// faults (worker stalls, applier delays, connection drops) fire
/// repeatedly at seed-derived periods throughout the schedule.
#[derive(Debug, Clone, Copy)]
pub struct SeededPlan {
    seed: u64,
}

impl SeededPlan {
    /// Builds the schedule for `seed`.
    pub fn new(seed: u64) -> SeededPlan {
        SeededPlan { seed }
    }

    /// The I/O fault this seed schedules, if any:
    /// `(site, firing visit, action)`.
    pub fn io_fault(&self) -> Option<(FaultSite, u64, FaultAction)> {
        let pick = mix(self.seed ^ 0xD1B5_4A32_D192_ED03) % 8;
        let visit = mix(self.seed ^ 0x8CB9_2BA7_2F3D_8DD7) % 6;
        match pick {
            0 => None,
            1 => Some((FaultSite::WalAppend, visit, FaultAction::Error)),
            2 => Some((FaultSite::WalAppend, visit, FaultAction::ShortWrite)),
            3 | 4 => Some((FaultSite::WalSync, visit, FaultAction::Error)),
            5 => Some((FaultSite::SnapshotWrite, visit, FaultAction::Error)),
            6 => Some((FaultSite::SnapshotRename, visit, FaultAction::Error)),
            _ => Some((FaultSite::TermLogAppend, visit, FaultAction::Error)),
        }
    }
}

impl FaultPlan for SeededPlan {
    fn action(&self, site: FaultSite, visit: u64) -> FaultAction {
        match site {
            FaultSite::WalAppend
            | FaultSite::WalSync
            | FaultSite::SnapshotWrite
            | FaultSite::SnapshotRename
            | FaultSite::TermLogAppend => match self.io_fault() {
                Some((s, v, a)) if s == site && v == visit => a,
                _ => FaultAction::None,
            },
            FaultSite::WorkerStall => {
                // Stall roughly one batch in 4..8, for 1..=12 ms.
                let r = h(self.seed, site, visit);
                if r.is_multiple_of(4 + self.seed % 5) {
                    FaultAction::Stall(1 + (r >> 32) % 12)
                } else {
                    FaultAction::None
                }
            }
            FaultSite::ApplierDelay => {
                // Delay roughly one applied batch in 3..7, for 1..=8 ms.
                let r = h(self.seed, site, visit);
                if r.is_multiple_of(3 + self.seed % 5) {
                    FaultAction::Stall(1 + (r >> 32) % 8)
                } else {
                    FaultAction::None
                }
            }
            FaultSite::ConnDrop => {
                // Drop roughly one request in 17..33.
                let r = h(self.seed, site, visit);
                if r.is_multiple_of(17 + self.seed % 17) {
                    FaultAction::Drop
                } else {
                    FaultAction::None
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------

/// Fast-path gate: a single atomic load when no plan is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed plan. `RwLock` because probes only ever read it; the
/// write lock is taken by `install`/`clear` (cold, test-only paths).
static PLAN: RwLock<Option<Arc<dyn FaultPlan>>> = RwLock::new(None);

/// Per-site visit counters, reset on `install`.
static VISITS: [AtomicU64; SITE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Count of non-[`FaultAction::None`] decisions since the last `install`.
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// Installs `plan` process-wide and resets every visit counter, so the
/// schedule restarts from visit 0 at every site.
pub fn install(plan: Arc<dyn FaultPlan>) {
    let mut slot = PLAN.write().unwrap_or_else(|p| p.into_inner());
    for v in &VISITS {
        v.store(0, Ordering::SeqCst);
    }
    INJECTED.store(0, Ordering::SeqCst);
    *slot = Some(plan);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes any installed plan; every subsequent probe passes through.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    let mut slot = PLAN.write().unwrap_or_else(|p| p.into_inner());
    *slot = None;
}

/// Probes `site`: consumes one visit and returns the plan's decision.
///
/// With no plan installed this is a single atomic load returning
/// [`FaultAction::None`]. The plan lock is released before returning, so
/// callers may sleep or fail without holding anything.
pub fn check(site: FaultSite) -> FaultAction {
    if !ENABLED.load(Ordering::SeqCst) {
        return FaultAction::None;
    }
    let plan = {
        let slot = PLAN.read().unwrap_or_else(|p| p.into_inner());
        slot.clone()
    };
    let Some(plan) = plan else {
        return FaultAction::None;
    };
    let visit = VISITS[site.idx()].fetch_add(1, Ordering::SeqCst);
    let action = plan.action(site, visit);
    if action != FaultAction::None {
        INJECTED.fetch_add(1, Ordering::SeqCst);
    }
    action
}

/// Probes `site` as an I/O operation: `Ok(())` to proceed, an injected
/// [`io::Error`] to fail. Stalls sleep, then proceed.
pub fn fire(site: FaultSite) -> io::Result<()> {
    match check(site) {
        FaultAction::None => Ok(()),
        FaultAction::Stall(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        FaultAction::Error | FaultAction::ShortWrite | FaultAction::Drop => {
            Err(injected_error(site))
        }
    }
}

/// Probes `site` as a pure delay point: sleeps if the plan says stall,
/// otherwise does nothing. Non-stall actions are ignored here.
pub fn stall(site: FaultSite) {
    if let FaultAction::Stall(ms) = check(site) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Probes `site` as a connection-drop point: `true` means hang up now.
pub fn drop_conn(site: FaultSite) -> bool {
    matches!(check(site), FaultAction::Drop)
}

/// Marker substring present in every injected error's message.
pub const INJECTED_MARKER: &str = "injected fault";

/// Builds the injected error for `site` (ENOSPC/EIO-shaped, tagged with
/// [`INJECTED_MARKER`] so tests can tell it from a real disk failure).
pub fn injected_error(site: FaultSite) -> io::Error {
    io::Error::other(format!(
        "{INJECTED_MARKER} at {} (simulated ENOSPC/EIO)",
        site.name()
    ))
}

/// Whether `e` (or its message) is an injected fault from this layer.
pub fn is_injected(e: &io::Error) -> bool {
    e.to_string().contains(INJECTED_MARKER)
}

/// Whether a rendered error message carries the injected-fault marker.
pub fn message_is_injected(msg: &str) -> bool {
    msg.contains(INJECTED_MARKER)
}

/// Number of faults injected (non-`None` decisions) since `install`.
pub fn injected_count() -> u64 {
    INJECTED.load(Ordering::SeqCst)
}

/// Number of probes seen at `site` since `install`.
pub fn visits(site: FaultSite) -> u64 {
    VISITS[site.idx()].load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_inert() {
        for site in FaultSite::ALL {
            for visit in 0..32 {
                assert_eq!(NoFaults.action(site, visit), FaultAction::None);
            }
        }
    }

    #[test]
    fn seeded_plan_is_deterministic() {
        for seed in 0..64u64 {
            let a = SeededPlan::new(seed);
            let b = SeededPlan::new(seed);
            for site in FaultSite::ALL {
                for visit in 0..256 {
                    assert_eq!(a.action(site, visit), b.action(site, visit));
                }
            }
        }
    }

    #[test]
    fn seeded_plans_cover_every_io_flavor() {
        // Across a modest seed range we must see every I/O fault flavor
        // (including the no-I/O-fault schedule) and some of each serving
        // fault — i.e. the schedule space actually exercises the matrix.
        let mut flavors = std::collections::HashSet::new();
        let mut stalls = 0u32;
        let mut drops = 0u32;
        for seed in 0..64u64 {
            let plan = SeededPlan::new(seed);
            match plan.io_fault() {
                None => {
                    flavors.insert("none");
                }
                Some((site, _, FaultAction::ShortWrite)) => {
                    assert_eq!(site, FaultSite::WalAppend);
                    flavors.insert("short-write");
                }
                Some((site, _, _)) => {
                    flavors.insert(site.name());
                }
            }
            for visit in 0..64 {
                if matches!(
                    plan.action(FaultSite::WorkerStall, visit),
                    FaultAction::Stall(_)
                ) {
                    stalls += 1;
                }
                if plan.action(FaultSite::ConnDrop, visit) == FaultAction::Drop {
                    drops += 1;
                }
            }
        }
        for want in [
            "none",
            "wal-append",
            "short-write",
            "wal-sync",
            "snapshot-write",
            "snapshot-rename",
            "termlog-append",
        ] {
            assert!(flavors.contains(want), "missing flavor {want}");
        }
        assert!(stalls > 0 && drops > 0);
    }

    #[test]
    fn io_fault_fires_exactly_once() {
        for seed in 0..64u64 {
            let plan = SeededPlan::new(seed);
            let Some((site, visit, action)) = plan.io_fault() else {
                continue;
            };
            let mut fired = 0;
            for v in 0..64 {
                let a = plan.action(site, v);
                if a != FaultAction::None {
                    assert_eq!(v, visit);
                    assert_eq!(a, action);
                    fired += 1;
                }
            }
            assert_eq!(fired, 1, "seed {seed}");
        }
    }

    #[test]
    fn registry_roundtrip() {
        // Single test touching the global registry (tests in this module
        // run in one process; keeping all registry assertions here avoids
        // cross-test interference on the process-wide plan slot).
        assert_eq!(check(FaultSite::WalSync), FaultAction::None);
        assert!(fire(FaultSite::WalSync).is_ok());

        struct FailSecondSync;
        impl FaultPlan for FailSecondSync {
            fn action(&self, site: FaultSite, visit: u64) -> FaultAction {
                if site == FaultSite::WalSync && visit == 1 {
                    FaultAction::Error
                } else {
                    FaultAction::None
                }
            }
        }
        install(Arc::new(FailSecondSync));
        assert!(fire(FaultSite::WalSync).is_ok());
        let err = fire(FaultSite::WalSync).expect_err("second sync fails");
        assert!(is_injected(&err));
        assert!(message_is_injected(&err.to_string()));
        assert_eq!(visits(FaultSite::WalSync), 2);
        assert_eq!(injected_count(), 1);

        // install resets the visit counters: the same plan fires again.
        install(Arc::new(FailSecondSync));
        assert_eq!(visits(FaultSite::WalSync), 0);
        assert!(fire(FaultSite::WalSync).is_ok());
        assert!(fire(FaultSite::WalSync).is_err());

        clear();
        assert!(fire(FaultSite::WalSync).is_ok());
        assert_eq!(check(FaultSite::ConnDrop), FaultAction::None);
        assert!(!drop_conn(FaultSite::ConnDrop));
        stall(FaultSite::WorkerStall); // no plan: returns immediately
    }
}
