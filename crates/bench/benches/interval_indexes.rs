//! Micro-benchmarks of the interval substrates: HINT against the 1D-grid
//! and the interval tree, across query extents — the motivation for
//! building on HINT at all (Section 1 / [19, 20]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tir_hint::{
    Grid1D, Hint, HintConfig, IntervalRecord, IntervalTree, PeriodIndex, TimelineIndex,
};

const N: u32 = 100_000;
const DOMAIN: u64 = 10_000_000;

fn records() -> Vec<IntervalRecord> {
    (0..N)
        .map(|i| {
            let st = (i as u64).wrapping_mul(2654435761) % (DOMAIN - 10_000);
            let len = 1 + (i as u64).wrapping_mul(48271) % 10_000;
            IntervalRecord {
                id: i,
                st,
                end: st + len,
            }
        })
        .collect()
}

fn queries(extent: u64) -> Vec<(u64, u64)> {
    (0..256u64)
        .map(|i| {
            let st = (i * 7_919_993) % (DOMAIN - extent);
            (st, st + extent)
        })
        .collect()
}

fn bench_range_queries(c: &mut Criterion) {
    let recs = records();
    let hint = Hint::build(&recs, HintConfig::default());
    let grid_coarse = Grid1D::build(&recs, 100);
    let grid_fine = Grid1D::build(&recs, 10_000);
    let tree = IntervalTree::build(&recs);
    let timeline = TimelineIndex::build(&recs);
    let period = PeriodIndex::build(&recs, 128);

    let mut group = c.benchmark_group("interval_range_query");
    for extent_pct in [0.001f64, 0.01, 0.1] {
        let extent = (DOMAIN as f64 * extent_pct / 100.0) as u64;
        let qs = queries(extent.max(1));
        group.bench_with_input(BenchmarkId::new("hint", extent_pct), &qs, |b, qs| {
            b.iter(|| {
                let mut n = 0;
                for &(a, z) in qs {
                    n += hint.range_query(a, z).len();
                }
                black_box(n)
            })
        });
        group.bench_with_input(BenchmarkId::new("grid100", extent_pct), &qs, |b, qs| {
            b.iter(|| {
                let mut n = 0;
                for &(a, z) in qs {
                    n += grid_coarse.range_query(a, z).len();
                }
                black_box(n)
            })
        });
        group.bench_with_input(BenchmarkId::new("grid10k", extent_pct), &qs, |b, qs| {
            b.iter(|| {
                let mut n = 0;
                for &(a, z) in qs {
                    n += grid_fine.range_query(a, z).len();
                }
                black_box(n)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("interval_tree", extent_pct),
            &qs,
            |b, qs| {
                b.iter(|| {
                    let mut n = 0;
                    for &(a, z) in qs {
                        n += tree.range_query(a, z).len();
                    }
                    black_box(n)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("timeline", extent_pct), &qs, |b, qs| {
            b.iter(|| {
                let mut n = 0;
                for &(a, z) in qs {
                    n += timeline.range_query(a, z).len();
                }
                black_box(n)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("period_index", extent_pct),
            &qs,
            |b, qs| {
                b.iter(|| {
                    let mut n = 0;
                    for &(a, z) in qs {
                        n += period.range_query(a, z).len();
                    }
                    black_box(n)
                })
            },
        );
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let recs = records();
    let mut group = c.benchmark_group("interval_build");
    group.sample_size(10);
    group.bench_function("hint", |b| {
        b.iter(|| black_box(Hint::build(&recs, HintConfig::default())))
    });
    group.bench_function("grid100", |b| {
        b.iter(|| black_box(Grid1D::build(&recs, 100)))
    });
    group.bench_function("interval_tree", |b| {
        b.iter(|| black_box(IntervalTree::build(&recs)))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_range_queries, bench_build
}
criterion_main!(benches);
