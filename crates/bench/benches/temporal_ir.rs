//! Criterion version of the headline comparison (Figure 11 at reduced
//! scale): every temporal-IR index answering the default workload on the
//! two real-shaped datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tir_bench::{build_method, datasets, Method};
use tir_datagen::{workload, Extent, WorkloadSpec};

fn bench_methods(c: &mut Criterion) {
    for d in datasets(1.0) {
        let mut group = c.benchmark_group(format!("query_{}", d.name));
        let qs = workload(&d.coll, &WorkloadSpec::default(), 200, 7);
        for &m in Method::all() {
            let built = build_method(m, &d.coll);
            group.bench_with_input(BenchmarkId::new(m.name(), "ext0.1%"), &qs, |b, qs| {
                b.iter(|| {
                    let mut n = 0;
                    for q in qs {
                        n += built.index.query(q).len();
                    }
                    black_box(n)
                })
            });
        }
        group.finish();
    }
}

fn bench_extent_sweep(c: &mut Criterion) {
    let d = &datasets(1.0)[0];
    let mut group = c.benchmark_group("extent_sweep_ECLOG");
    for extent in [0.001f64, 0.01, 0.1, 1.0] {
        let qs = workload(
            &d.coll,
            &WorkloadSpec {
                extent: Extent::Fraction(extent),
                ..Default::default()
            },
            100,
            7,
        );
        for &m in Method::competition() {
            let built = build_method(m, &d.coll);
            group.bench_with_input(
                BenchmarkId::new(m.name(), format!("{}%", extent * 100.0)),
                &qs,
                |b, qs| {
                    b.iter(|| {
                        let mut n = 0;
                        for q in qs {
                            n += built.index.query(q).len();
                        }
                        black_box(n)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_builds(c: &mut Criterion) {
    let d = &datasets(1.0)[0];
    let mut group = c.benchmark_group("build_ECLOG");
    group.sample_size(10);
    for &m in Method::all() {
        group.bench_function(m.name(), |b| {
            b.iter(|| black_box(build_method(m, &d.coll).index.size_bytes()))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_methods, bench_extent_sweep, bench_builds
}
criterion_main!(benches);
