//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * HINT division ordering: beneficial sorting vs insertion order vs
//!   id order (what the sorting optimization buys);
//! * storage optimization on/off (endpoint elision);
//! * irHINT `m`: IR-aware heuristic vs the interval-only cost model;
//! * per-division subdivision refinement: the checks saved by
//!   `compfirst`/`complast` show up as the gap between small and large
//!   extents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tir_bench::datasets;
use tir_core::{IrHintPerf, TemporalIrIndex};
use tir_datagen::{workload, WorkloadSpec};
use tir_hint::{DivisionOrder, Hint, HintConfig, IntervalRecord};

const N: u32 = 100_000;
const DOMAIN: u64 = 10_000_000;

fn records() -> Vec<IntervalRecord> {
    (0..N)
        .map(|i| {
            let st = (i as u64).wrapping_mul(2654435761) % (DOMAIN - 50_000);
            let len = 1 + (i as u64).wrapping_mul(48271) % 50_000;
            IntervalRecord {
                id: i,
                st,
                end: st + len,
            }
        })
        .collect()
}

fn bench_division_order(c: &mut Criterion) {
    let recs = records();
    let mut group = c.benchmark_group("hint_division_order");
    let qs: Vec<(u64, u64)> = (0..256u64)
        .map(|i| {
            let st = (i * 7_919_993) % (DOMAIN - 10_000);
            (st, st + 10_000)
        })
        .collect();
    for (name, order, storage) in [
        ("beneficial+storage", DivisionOrder::Beneficial, true),
        ("beneficial", DivisionOrder::Beneficial, false),
        ("insertion", DivisionOrder::Insertion, false),
        ("by_id", DivisionOrder::ById, true),
    ] {
        let hint = Hint::build(
            &recs,
            HintConfig {
                m: None,
                order,
                storage_opt: storage,
            },
        );
        group.bench_function(BenchmarkId::new(name, "0.1%"), |b| {
            b.iter(|| {
                let mut n = 0;
                for &(a, z) in &qs {
                    n += hint.range_query(a, z).len();
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

fn bench_bottom_up_traversal(c: &mut Criterion) {
    // Quantifies the compfirst/complast comparison elision (Section 2.3's
    // bottom-up traversal) against the conventional traversal.
    let recs = records();
    let hint = Hint::build(&recs, HintConfig::default());
    let qs: Vec<(u64, u64)> = (0..256u64)
        .map(|i| {
            let st = (i * 7_919_993) % (DOMAIN - 100_000);
            (st, st + 100_000)
        })
        .collect();
    let mut group = c.benchmark_group("hint_traversal");
    group.bench_function("bottom_up", |b| {
        b.iter(|| {
            let mut n = 0;
            for &(a, z) in &qs {
                n += hint.range_query(a, z).len();
            }
            black_box(n)
        })
    });
    group.bench_function("conventional", |b| {
        b.iter(|| {
            let mut n = 0;
            for &(a, z) in &qs {
                n += hint.range_query_conventional(a, z).len();
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_tif_hint_m_source(c: &mut Criterion) {
    // Section 5.2: the per-list cost model picks m too large for
    // postings HINTs; fixed m=5 wins for the merge-sort variant.
    let d = &datasets(0.5)[0];
    let qs = workload(&d.coll, &WorkloadSpec::default(), 100, 7);
    let fixed = tir_core::TifHint::build(&d.coll, tir_core::TifHintConfig::merge_sort());
    let modeled = tir_core::TifHint::build_with_per_list_cost_model(
        &d.coll,
        tir_core::IntersectStrategy::MergeSort,
    );
    let mut group = c.benchmark_group("tif_hint_m_source");
    for (name, idx) in [("fixed_m5", &fixed), ("per_list_cost_model", &modeled)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut n = 0;
                for q in &qs {
                    n += idx.query(q).len();
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let d = &datasets(1.0)[0];
    let qs = workload(&d.coll, &WorkloadSpec::default(), 400, 7);
    let idx = IrHintPerf::build(&d.coll);
    let mut group = c.benchmark_group("parallel_query_scaling");
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| black_box(tir_bench::par_throughput(&idx, &qs, threads)))
        });
    }
    group.finish();
}

fn bench_irhint_m_choice(c: &mut Criterion) {
    let d = &datasets(1.0)[0];
    let qs = workload(&d.coll, &WorkloadSpec::default(), 150, 7);
    let mut group = c.benchmark_group("irhint_m_choice");
    let ir_aware = IrHintPerf::build(&d.coll); // IR-aware heuristic
    let records: Vec<IntervalRecord> = d
        .coll
        .objects()
        .iter()
        .map(|o| IntervalRecord {
            id: o.id,
            st: o.interval.st,
            end: o.interval.end,
        })
        .collect();
    let dom = d.coll.domain();
    let m_interval_only = tir_hint::cost::choose_m(&records, dom.st, dom.end);
    let cost_model = IrHintPerf::build_with_m(&d.coll, m_interval_only);
    for (name, idx) in [
        (format!("ir_aware(m={})", ir_aware.m()), &ir_aware),
        (
            format!("interval_cost_model(m={m_interval_only})"),
            &cost_model,
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut n = 0;
                for q in &qs {
                    n += idx.query(q).len();
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_division_order, bench_irhint_m_choice, bench_bottom_up_traversal, bench_tif_hint_m_source, bench_parallel_scaling
}
criterion_main!(benches);
