//! Criterion version of Tables 6 and 7: batch insertion and tombstone
//! deletion across all methods.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tir_bench::{build_method, datasets, Method};
use tir_core::insert_batch;

fn bench_insertions(c: &mut Criterion) {
    let d = &datasets(0.5)[0];
    let (offline, holdout) = d.coll.split_for_updates(0.10);
    let mut group = c.benchmark_group("insert_10pct_ECLOG");
    group.sample_size(10);
    for &m in Method::all() {
        group.bench_function(BenchmarkId::new(m.name(), holdout.len()), |b| {
            b.iter_batched(
                || build_method(m, &offline).index,
                |mut index| {
                    insert_batch(index.as_mut(), &holdout);
                    black_box(index.size_bytes())
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_deletions(c: &mut Criterion) {
    let d = &datasets(0.5)[0];
    let victims: Vec<_> = d
        .coll
        .objects()
        .iter()
        .take(d.coll.len() / 10)
        .cloned()
        .collect();
    let mut group = c.benchmark_group("delete_10pct_ECLOG");
    group.sample_size(10);
    for &m in Method::all() {
        group.bench_function(BenchmarkId::new(m.name(), victims.len()), |b| {
            b.iter_batched(
                || build_method(m, &d.coll).index,
                |mut index| {
                    let mut found = 0;
                    for v in &victims {
                        if index.delete(v) {
                            found += 1;
                        }
                    }
                    black_box(found)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_insertions, bench_deletions
}
criterion_main!(benches);
