//! Micro-benchmarks of the sorted-set intersection kernels: merge vs
//! galloping vs adaptive, across size ratios — the machinery behind every
//! postings-list intersection in the library.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tir_invidx::{
    intersect_adaptive_into, intersect_gallop_into, intersect_merge_into, InvertedIndex,
    SignatureFile,
};

fn sorted(n: usize, stride: u32, offset: u32) -> Vec<u32> {
    (0..n as u32).map(|i| i * stride + offset).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection");
    let postings = sorted(100_000, 3, 0);
    for cand_size in [100usize, 1_000, 10_000, 100_000] {
        let cands = sorted(cand_size, 300_000 / cand_size as u32, 1);
        for (name, f) in [
            (
                "merge",
                intersect_merge_into as fn(&[u32], &[u32], &mut Vec<u32>),
            ),
            ("gallop", intersect_gallop_into),
            ("adaptive", intersect_adaptive_into),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, cand_size),
                &(&cands, &postings),
                |b, (c_, p)| {
                    let mut out = Vec::with_capacity(cand_size);
                    b.iter(|| {
                        out.clear();
                        f(c_, p, &mut out);
                        black_box(out.len())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sigfile_vs_inverted(c: &mut Criterion) {
    // Section 6.1's design justification: inverted files beat signature
    // files on containment search.
    let objects: Vec<(u32, Vec<u32>)> = (0..50_000u32)
        .map(|i| {
            let mut d = vec![i % 97, 97 + i % 53, 150 + i % 31, 181 + i % 11];
            d.sort_unstable();
            d.dedup();
            (i, d)
        })
        .collect();
    let inv = InvertedIndex::build(objects.iter().map(|(id, d)| (*id, d.as_slice())));
    let sf = SignatureFile::build(objects.iter().map(|(id, d)| (*id, d.as_slice())));
    let queries: Vec<Vec<u32>> = (0..64u32).map(|i| vec![i % 97, 97 + i % 53]).collect();

    let mut group = c.benchmark_group("containment_sigfile_vs_inverted");
    group.bench_function("inverted", |b| {
        b.iter(|| {
            let mut n = 0;
            for q in &queries {
                n += inv.containment_query(q).len();
            }
            black_box(n)
        })
    });
    group.bench_function("sigfile", |b| {
        b.iter(|| {
            let mut n = 0;
            for q in &queries {
                n += sf.containment_query(q).len();
            }
            black_box(n)
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernels, bench_sigfile_vs_inverted
}
criterion_main!(benches);
