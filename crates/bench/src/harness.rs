//! Shared harness: index construction with timing, query throughput
//! measurement, and the benchmark dataset registry.

use std::hint::black_box;
use std::time::Instant;

use tir_core::prelude::*;
use tir_datagen::{eclog_like, wikipedia_like};

/// Every index method of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Base temporal inverted file (no temporal indexing).
    Tif,
    /// tIF+Slicing (Berberich et al.).
    Slicing,
    /// tIF+Sharding (Anand et al.).
    Sharding,
    /// tIF+HINT with binary-search intersections (Algorithm 3).
    TifHintBs,
    /// tIF+HINT with merge-sort intersections (Algorithm 4).
    TifHintMs,
    /// tIF+HINT+Slicing hybrid (Section 3.2).
    Hybrid,
    /// irHINT, performance variant (Section 4.1).
    IrPerf,
    /// irHINT, size variant (Section 4.2).
    IrSize,
}

impl Method {
    /// All methods, in Table 5 order.
    pub fn all() -> &'static [Method] {
        &[
            Method::Slicing,
            Method::Sharding,
            Method::TifHintBs,
            Method::TifHintMs,
            Method::Hybrid,
            Method::IrPerf,
            Method::IrSize,
        ]
    }

    /// The Figure 11/12 line-up: our best IR-first and both irHINT
    /// variants against the two competitors.
    pub fn competition() -> &'static [Method] {
        &[
            Method::Slicing,
            Method::Sharding,
            Method::Hybrid,
            Method::IrPerf,
            Method::IrSize,
        ]
    }

    /// The three tIF+HINT variants compared in Section 5.3 / Figure 10.
    pub fn tif_hint_variants() -> &'static [Method] {
        &[Method::TifHintBs, Method::TifHintMs, Method::Hybrid]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Tif => "tIF",
            Method::Slicing => "tIF+Slicing",
            Method::Sharding => "tIF+Sharding",
            Method::TifHintBs => "tIF+HINT(bs)",
            Method::TifHintMs => "tIF+HINT(ms)",
            Method::Hybrid => "tIF+HINT+Slicing",
            Method::IrPerf => "irHINT(perf)",
            Method::IrSize => "irHINT(size)",
        }
    }
}

/// Build timing and size of a constructed index.
pub struct BuildStats {
    /// The constructed index.
    pub index: Box<dyn TemporalIrIndex>,
    /// Wall-clock build time in seconds.
    pub build_secs: f64,
    /// Heap footprint in MiB.
    pub size_mib: f64,
}

/// Builds one method over a collection, timing it.
pub fn build_method(method: Method, coll: &Collection) -> BuildStats {
    let t0 = Instant::now();
    let index: Box<dyn TemporalIrIndex> = match method {
        Method::Tif => Box::new(Tif::build(coll)),
        Method::Slicing => Box::new(TifSlicing::build(coll)),
        Method::Sharding => Box::new(TifSharding::build(coll)),
        Method::TifHintBs => Box::new(TifHint::build(coll, TifHintConfig::binary_search())),
        Method::TifHintMs => Box::new(TifHint::build(coll, TifHintConfig::merge_sort())),
        Method::Hybrid => Box::new(TifHintSlicing::build(coll)),
        Method::IrPerf => Box::new(IrHintPerf::build(coll)),
        Method::IrSize => Box::new(IrHintSize::build(coll)),
    };
    let build_secs = t0.elapsed().as_secs_f64();
    let size_mib = index.size_bytes() as f64 / (1024.0 * 1024.0);
    BuildStats {
        index,
        build_secs,
        size_mib,
    }
}

/// Measures query throughput in queries/second: one warm-up pass, then
/// the best of three timed passes (robust against the periodic CPU
/// throttling of shared machines); results are consumed through
/// `black_box`.
pub fn throughput(index: &dyn TemporalIrIndex, queries: &[TimeTravelQuery]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    // One scratch arena and one reply buffer for the whole measurement:
    // the timed loop exercises the zero-alloc `query_into` path, like
    // the serving workers do.
    let mut scratch = QueryScratch::default();
    let mut hits: Vec<ObjectId> = Vec::new();
    let warm = queries.len().min(64);
    for q in &queries[..warm] {
        hits.clear();
        index.query_into(q, &mut scratch, &mut hits);
        black_box(hits.len());
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut total = 0usize;
        for q in queries {
            hits.clear();
            index.query_into(q, &mut scratch, &mut hits);
            total += hits.len();
        }
        best = best.min(t0.elapsed().as_secs_f64());
        black_box(total);
    }
    queries.len() as f64 / best.max(1e-9)
}

/// Parallel query throughput: splits the workload over `threads` OS
/// threads sharing the read-only index (all indexes are `Sync`: queries
/// take `&self`). Returns queries/second aggregated over all threads.
pub fn par_throughput<I>(index: &I, queries: &[TimeTravelQuery], threads: usize) -> f64
where
    I: TemporalIrIndex + Sync,
{
    assert!(threads >= 1);
    if queries.is_empty() {
        return 0.0;
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let chunk = queries.len().div_ceil(threads);
        for part in queries.chunks(chunk) {
            s.spawn(move || {
                // Per-thread scratch, mirroring the serve pool's
                // one-arena-per-worker layout.
                let mut scratch = QueryScratch::default();
                let mut hits: Vec<ObjectId> = Vec::new();
                let mut total = 0usize;
                for q in part {
                    hits.clear();
                    index.query_into(q, &mut scratch, &mut hits);
                    total += hits.len();
                }
                black_box(total);
            });
        }
    });
    queries.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// A named benchmark dataset.
pub struct Dataset {
    /// Display name.
    pub name: &'static str,
    /// The collection.
    pub coll: Collection,
}

/// The two real-world-shaped datasets at the harness default sizes
/// multiplied by `scale` (1.0 ≈ 6K-session ECLOG and 8K-revision
/// WIKIPEDIA stand-ins; raise for fidelity, lower for speed).
pub fn datasets(scale: f64) -> Vec<Dataset> {
    vec![
        Dataset {
            name: "ECLOG",
            coll: eclog_like((0.02 * scale).min(1.0), 42),
        },
        Dataset {
            name: "WIKIPEDIA",
            coll: wikipedia_like((0.005 * scale).min(1.0), 42),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir_datagen::{workload, WorkloadSpec};

    #[test]
    fn every_method_builds_and_agrees_on_real_shapes() {
        let ds = datasets(0.05);
        for d in &ds {
            let oracle = BruteForce::build(d.coll.objects());
            let queries = workload(&d.coll, &WorkloadSpec::default(), 10, 3);
            assert!(!queries.is_empty());
            for &m in Method::all() {
                let built = build_method(m, &d.coll);
                assert!(built.size_mib > 0.0);
                for q in &queries {
                    let mut got = built.index.query(q);
                    got.sort_unstable();
                    got.dedup();
                    assert_eq!(got, oracle.answer(q), "{} on {}", m.name(), d.name);
                }
            }
        }
    }

    #[test]
    fn throughput_positive() {
        let ds = datasets(0.05);
        let queries = workload(&ds[0].coll, &WorkloadSpec::default(), 50, 3);
        let built = build_method(Method::IrPerf, &ds[0].coll);
        assert!(throughput(built.index.as_ref(), &queries) > 0.0);
    }
}
