//! One function per table / figure of the paper's evaluation. Each prints
//! the same rows/series the paper plots; EXPERIMENTS.md records a
//! paper-vs-measured comparison of the shapes.

use std::time::Instant;

use tir_core::prelude::*;
use tir_datagen::{
    selectivity_binned, workload, ElemSource, Extent, SyntheticConfig, WorkloadSpec,
    SELECTIVITY_LABELS,
};

use crate::harness::{build_method, datasets, throughput, Dataset, Method};

/// Run options shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Multiplier on the harness default dataset sizes.
    pub scale: f64,
    /// Queries per measurement point (the paper uses 10K).
    pub queries: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 1.0,
            queries: 1000,
            seed: 7,
        }
    }
}

/// The element-frequency bins of Section 5.1, in percent.
pub const FREQ_BINS: [(f64, f64); 4] = [(0.0, 0.1), (0.1, 1.0), (1.0, 10.0), (10.0, 100.0)];

/// Labels for [`FREQ_BINS`].
pub const FREQ_LABELS: [&str; 4] = ["[*-0.1]", "(0.1-1]", "(1-10]", "(10-*]"];

fn banner(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

fn default_queries(coll: &Collection, n: usize, seed: u64) -> Vec<TimeTravelQuery> {
    workload(coll, &WorkloadSpec::default(), n, seed)
}

/// Table 3 / Figure 7: dataset shape statistics.
pub fn table3(o: &Opts) {
    banner("Table 3: characteristics of (shape-matched) real datasets");
    println!("{:<28} {:>14} {:>14}", "", "ECLOG", "WIKIPEDIA");
    let ds = datasets(o.scale);
    let stats: Vec<_> = ds.iter().map(|d| d.coll.stats()).collect();
    let row = |name: &str, f: &dyn Fn(&CollectionStats) -> String| {
        println!("{:<28} {:>14} {:>14}", name, f(&stats[0]), f(&stats[1]));
    };
    row("Cardinality", &|s| s.cardinality.to_string());
    row("Time domain", &|s| s.domain_span.to_string());
    row("Min duration", &|s| s.min_duration.to_string());
    row("Max duration", &|s| s.max_duration.to_string());
    row("Avg duration", &|s| format!("{:.0}", s.avg_duration));
    row("Avg duration [%]", &|s| {
        format!("{:.1}", s.avg_duration_pct)
    });
    row("Dictionary size", &|s| s.dictionary_size.to_string());
    row("Min description", &|s| s.min_desc.to_string());
    row("Max description", &|s| s.max_desc.to_string());
    row("Avg description", &|s| format!("{:.0}", s.avg_desc));
    row("Avg elem frequency", &|s| format!("{:.0}", s.avg_elem_freq));
    row("Avg elem frequency [%]", &|s| {
        format!("{:.2}", s.avg_elem_freq_pct)
    });
}

/// Figure 8: tuning the number of slices for tIF+Slicing.
pub fn fig8(o: &Opts) {
    banner("Figure 8: tuning tIF+Slicing (# slices)");
    for d in datasets(o.scale) {
        println!("\n-- {} --", d.name);
        println!(
            "{:>8} {:>14} {:>12} {:>18}",
            "slices", "index [s]", "size [MiB]", "queries/sec"
        );
        let queries = default_queries(&d.coll, o.queries, o.seed);
        for k in [1u32, 10, 25, 50, 100, 150, 250] {
            let t0 = Instant::now();
            let idx = TifSlicing::build_with_slices(&d.coll, k);
            let build = t0.elapsed().as_secs_f64();
            let size = idx.size_bytes() as f64 / (1024.0 * 1024.0);
            let qps = throughput(&idx, &queries);
            println!("{k:>8} {build:>14.3} {size:>12.2} {qps:>18.0}");
        }
    }
}

/// Figure 9: tuning `m` for the tIF+HINT variants.
pub fn fig9(o: &Opts) {
    banner("Figure 9: tuning tIF+HINT variants (m)");
    for d in datasets(o.scale) {
        println!("\n-- {} --", d.name);
        let queries = default_queries(&d.coll, o.queries, o.seed);
        println!(
            "{:>4} | {:>10} {:>10} {:>12} | {:>10} {:>10} {:>12} | {:>10} {:>10} {:>12}",
            "m",
            "bs [s]",
            "bs [MiB]",
            "bs q/s",
            "ms [s]",
            "ms [MiB]",
            "ms q/s",
            "hyb [s]",
            "hyb [MiB]",
            "hyb q/s",
        );
        for m in [1u32, 3, 5, 8, 10, 13, 16] {
            let mut cells = Vec::new();
            for variant in 0..3 {
                let t0 = Instant::now();
                let idx: Box<dyn TemporalIrIndex> = match variant {
                    0 => Box::new(TifHint::build(
                        &d.coll,
                        TifHintConfig {
                            strategy: IntersectStrategy::BinarySearch,
                            m,
                        },
                    )),
                    1 => Box::new(TifHint::build(
                        &d.coll,
                        TifHintConfig {
                            strategy: IntersectStrategy::MergeSort,
                            m,
                        },
                    )),
                    _ => Box::new(TifHintSlicing::build_with_params(&d.coll, m, 50)),
                };
                let build = t0.elapsed().as_secs_f64();
                let size = idx.size_bytes() as f64 / (1024.0 * 1024.0);
                let qps = throughput(idx.as_ref(), &queries);
                cells.push((build, size, qps));
            }
            println!(
                "{:>4} | {:>10.3} {:>10.2} {:>12.0} | {:>10.3} {:>10.2} {:>12.0} | {:>10.3} {:>10.2} {:>12.0}",
                m,
                cells[0].0, cells[0].1, cells[0].2,
                cells[1].0, cells[1].1, cells[1].2,
                cells[2].0, cells[2].1, cells[2].2,
            );
        }
    }
}

fn freq_bin_queries(
    coll: &Collection,
    bin: (f64, f64),
    n: usize,
    seed: u64,
) -> Vec<TimeTravelQuery> {
    let spec = WorkloadSpec {
        extent: Extent::Fraction(0.001),
        num_elems: 3,
        source: ElemSource::FreqBin {
            lo_pct: bin.0,
            hi_pct: bin.1,
        },
    };
    workload(coll, &spec, n, seed)
}

fn print_throughput_panel(
    title: &str,
    methods: &[Method],
    indexes: &[Box<dyn TemporalIrIndex>],
    labels: &[String],
    workloads: &[Vec<TimeTravelQuery>],
) {
    println!("\n{title}");
    print!("{:<18}", "");
    for l in labels {
        print!(" {l:>12}");
    }
    println!();
    for (mi, m) in methods.iter().enumerate() {
        print!("{:<18}", m.name());
        for qs in workloads {
            if qs.is_empty() {
                print!(" {:>12}", "-");
            } else {
                print!(" {:>12.0}", throughput(indexes[mi].as_ref(), qs));
            }
        }
        println!();
    }
}

fn run_panels(d: &Dataset, methods: &[Method], o: &Opts, extents: &[Extent]) {
    let indexes: Vec<Box<dyn TemporalIrIndex>> = methods
        .iter()
        .map(|&m| build_method(m, &d.coll).index)
        .collect();

    // Panel 1: query interval extent.
    let labels: Vec<String> = extents
        .iter()
        .map(|e| match e {
            Extent::Stabbing => "stab".to_string(),
            Extent::Fraction(f) => format!("{}%", f * 100.0),
        })
        .collect();
    let workloads: Vec<Vec<TimeTravelQuery>> = extents
        .iter()
        .map(|&extent| {
            workload(
                &d.coll,
                &WorkloadSpec {
                    extent,
                    ..Default::default()
                },
                o.queries,
                o.seed,
            )
        })
        .collect();
    print_throughput_panel(
        "query interval extent:",
        methods,
        &indexes,
        &labels,
        &workloads,
    );

    // Panel 2: |q.d|.
    let labels: Vec<String> = (1..=5).map(|k| format!("|q.d|={k}")).collect();
    let workloads: Vec<Vec<TimeTravelQuery>> = (1..=5)
        .map(|k| {
            workload(
                &d.coll,
                &WorkloadSpec {
                    num_elems: k,
                    ..Default::default()
                },
                o.queries,
                o.seed,
            )
        })
        .collect();
    print_throughput_panel(
        "number of query elements:",
        methods,
        &indexes,
        &labels,
        &workloads,
    );

    // Panel 3: element frequency bins.
    let labels: Vec<String> = FREQ_LABELS.iter().map(|s| s.to_string()).collect();
    let workloads: Vec<Vec<TimeTravelQuery>> = FREQ_BINS
        .iter()
        .map(|&bin| freq_bin_queries(&d.coll, bin, o.queries, o.seed))
        .collect();
    print_throughput_panel(
        "element frequency bins:",
        methods,
        &indexes,
        &labels,
        &workloads,
    );

    // Panel 4: selectivity bins (measured with the first index).
    let per_bin = (o.queries / 5).max(10);
    let bins = selectivity_binned(&d.coll, indexes[0].as_ref(), per_bin, o.seed);
    let labels: Vec<String> = SELECTIVITY_LABELS.iter().map(|s| s.to_string()).collect();
    print_throughput_panel(
        "result selectivity bins [%]:",
        methods,
        &indexes,
        &labels,
        &bins,
    );
}

/// Figure 10: comparing the three tIF+HINT variants.
pub fn fig10(o: &Opts) {
    banner("Figure 10: throughput of the tIF+HINT variants");
    let extents = [
        Extent::Fraction(0.0001),
        Extent::Fraction(0.0005),
        Extent::Fraction(0.001),
        Extent::Fraction(0.005),
        Extent::Fraction(0.01),
    ];
    for d in datasets(o.scale) {
        println!("\n-- {} --", d.name);
        run_panels(&d, Method::tif_hint_variants(), o, &extents);
    }
}

/// Table 5: indexing time and size of every method.
pub fn table5(o: &Opts) {
    banner("Table 5: indexing costs (time [s] / size [MiB])");
    let ds = datasets(o.scale);
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "index",
        format!("{} [s]", ds[0].name),
        format!("{} [s]", ds[1].name),
        format!("{} [MiB]", ds[0].name),
        format!("{} [MiB]", ds[1].name),
    );
    for &m in Method::all() {
        let a = build_method(m, &ds[0].coll);
        let b = build_method(m, &ds[1].coll);
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.2} {:>12.2}",
            m.name(),
            a.build_secs,
            b.build_secs,
            a.size_mib,
            b.size_mib
        );
    }
}

/// Figure 11: all methods against the competition on the real-shaped
/// datasets, across the four workload knobs.
pub fn fig11(o: &Opts) {
    banner("Figure 11: throughput vs competition (real-shaped datasets)");
    let extents = [
        Extent::Stabbing,
        Extent::Fraction(0.0001),
        Extent::Fraction(0.0005),
        Extent::Fraction(0.001),
        Extent::Fraction(0.005),
        Extent::Fraction(0.01),
        Extent::Fraction(0.05),
        Extent::Fraction(0.1),
        Extent::Fraction(0.5),
        Extent::Fraction(1.0),
    ];
    for d in datasets(o.scale) {
        println!("\n-- {} --", d.name);
        run_panels(&d, Method::competition(), o, &extents);
    }
}

/// Figure 12: the synthetic parameter sweeps.
pub fn fig12(o: &Opts) {
    banner("Figure 12: synthetic dataset sweeps");
    // Laptop-scale default: the paper's defaults shrunk 100x.
    let base = SyntheticConfig::default().scaled(0.01 * o.scale);
    let methods = Method::competition();

    let sweep = |title: &str, configs: Vec<(String, SyntheticConfig)>| {
        println!("\n{title}");
        print!("{:<18}", "");
        for (label, _) in &configs {
            print!(" {label:>12}");
        }
        println!();
        let cells: Vec<Vec<f64>> = configs
            .iter()
            .map(|(_, cfg)| {
                let coll = tir_datagen::generate(cfg);
                let queries = default_queries(&coll, o.queries, o.seed);
                methods
                    .iter()
                    .map(|&m| {
                        let built = build_method(m, &coll);
                        throughput(built.index.as_ref(), &queries)
                    })
                    .collect()
            })
            .collect();
        for (mi, m) in methods.iter().enumerate() {
            print!("{:<18}", m.name());
            for col in &cells {
                print!(" {:>12.0}", col[mi]);
            }
            println!();
        }
    };

    sweep(
        "dataset cardinality:",
        [0.1, 0.5, 1.0, 5.0, 10.0]
            .iter()
            .map(|&f| {
                let mut c = base;
                c.cardinality = ((base.cardinality as f64 * f) as usize).max(100);
                (format!("{}", c.cardinality), c)
            })
            .collect(),
    );
    sweep(
        "time domain size:",
        [0.25, 0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|&f| {
                let mut c = base;
                c.domain = ((base.domain as f64 * f) as u64).max(1024);
                (format!("{}", c.domain), c)
            })
            .collect(),
    );
    sweep(
        "alpha (interval duration):",
        [1.01, 1.1, 1.2, 1.4, 1.8]
            .iter()
            .map(|&a| {
                let mut c = base;
                c.alpha = a;
                (format!("{a}"), c)
            })
            .collect(),
    );
    sweep(
        "sigma (interval position):",
        [0.01, 0.1, 1.0, 5.0, 10.0]
            .iter()
            .map(|&f| {
                let mut c = base;
                c.sigma = ((base.sigma as f64 * f) as u64).max(1);
                (format!("{}", c.sigma), c)
            })
            .collect(),
    );
    sweep(
        "dictionary size:",
        [0.1, 0.5, 1.0, 5.0, 10.0]
            .iter()
            .map(|&f| {
                let mut c = base;
                c.dict_size = ((base.dict_size as f64 * f) as u32).max(16);
                (format!("{}", c.dict_size), c)
            })
            .collect(),
    );
    sweep(
        "description size |d|:",
        [5usize, 10, 50, 100, 500]
            .iter()
            .map(|&k| {
                let mut c = base;
                c.desc_size = k;
                (format!("{k}"), c)
            })
            .collect(),
    );
    sweep(
        "element frequency skew (zeta):",
        [1.0, 1.25, 1.5, 1.75, 2.0]
            .iter()
            .map(|&z| {
                let mut c = base;
                c.zeta = z;
                (format!("{z}"), c)
            })
            .collect(),
    );

    // Query-side sweeps on the default synthetic dataset.
    let coll = tir_datagen::generate(&base);
    let d = Dataset {
        name: "synthetic(default)",
        coll,
    };
    println!("\n-- {} --", d.name);
    let extents = [
        Extent::Fraction(0.0001),
        Extent::Fraction(0.001),
        Extent::Fraction(0.01),
        Extent::Fraction(0.1),
        Extent::Fraction(1.0),
    ];
    run_panels(&d, methods, o, &extents);
}

/// Table 6: insertion update times.
pub fn table6(o: &Opts) {
    banner("Table 6: update time [s] for insertions (batches of 1/5/10%)");
    for d in datasets(o.scale) {
        println!("\n-- {} --", d.name);
        println!("{:<18} {:>10} {:>10} {:>10}", "index", "1%", "5%", "10%");
        let (offline, holdout) = d.coll.split_for_updates(0.10);
        for &m in Method::all() {
            print!("{:<18}", m.name());
            for frac in [0.01, 0.05, 0.10] {
                let take = ((d.coll.len() as f64 * frac).round() as usize).min(holdout.len());
                let mut built = build_method(m, &offline);
                let t0 = Instant::now();
                insert_batch(built.index.as_mut(), &holdout[..take]);
                print!(" {:>10.4}", t0.elapsed().as_secs_f64());
            }
            println!();
        }
    }
}

/// Table 7: deletion update times (tombstones).
pub fn table7(o: &Opts) {
    banner("Table 7: update time [s] for deletions (batches of 1/5/10%)");
    for d in datasets(o.scale) {
        println!("\n-- {} --", d.name);
        println!("{:<18} {:>10} {:>10} {:>10}", "index", "1%", "5%", "10%");
        for &m in Method::all() {
            print!("{:<18}", m.name());
            for frac in [0.01, 0.05, 0.10] {
                let take = (d.coll.len() as f64 * frac).round() as usize;
                let victims: Vec<&Object> = d.coll.objects().iter().take(take).collect();
                let mut built = build_method(m, &d.coll);
                let t0 = Instant::now();
                let mut found = 0usize;
                for v in &victims {
                    if built.index.delete(v) {
                        found += 1;
                    }
                }
                assert_eq!(found, victims.len(), "{} lost deletes", m.name());
                print!(" {:>10.4}", t0.elapsed().as_secs_f64());
            }
            println!();
        }
    }
}

/// Ablation: sweep `m` for both irHINT variants (design-choice study for
/// the cost-model discussion in Section 5.2/5.4).
pub fn irhint_mtune(o: &Opts) {
    banner("Ablation: irHINT m sweep");
    for d in datasets(o.scale) {
        println!("\n-- {} --", d.name);
        let queries = default_queries(&d.coll, o.queries, o.seed);
        println!(
            "{:>4} | {:>10} {:>10} {:>12} | {:>10} {:>10} {:>12}",
            "m", "perf [s]", "perf [MiB]", "perf q/s", "size [s]", "size [MiB]", "size q/s"
        );
        for m in [2u32, 4, 6, 8, 10, 12, 14, 16] {
            let t0 = Instant::now();
            let perf = IrHintPerf::build_with_m(&d.coll, m);
            let pt = t0.elapsed().as_secs_f64();
            let pq = throughput(&perf, &queries);
            let psz = perf.size_bytes() as f64 / (1024.0 * 1024.0);
            drop(perf);
            let t0 = Instant::now();
            let size = IrHintSize::build_with_m(&d.coll, m);
            let st = t0.elapsed().as_secs_f64();
            let sq = throughput(&size, &queries);
            let ssz = size.size_bytes() as f64 / (1024.0 * 1024.0);
            println!(
                "{m:>4} | {pt:>10.3} {psz:>10.2} {pq:>12.0} | {st:>10.3} {ssz:>10.2} {sq:>12.0}"
            );
        }
    }
}

/// Serving-throughput experiment (beyond the paper): query throughput
/// and tail latency of the epoch-snapshot serving stack while a live
/// writer applies a mixed insert/delete stream, swept over reader-thread
/// counts. Every epoch swap runs the tir-check structural validator;
/// the run aborts on any violation. Results also land in
/// `BENCH_serve.json` for machine consumption.
pub fn serve(o: &Opts) {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    use tir_check::Validate;
    use tir_datagen::{mixed_stream, MixedSpec, Op};
    use tir_serve::epoch::{EpochConfig, EpochStore, WriteOp};
    use tir_serve::{Json, LatencyHistogram, PoolConfig, QueryPool, Rejected};

    banner("Serving: epoch snapshots under concurrent readers + live writer");
    let mut records = Vec::new();
    for d in datasets(o.scale) {
        println!("\n-- {} --", d.name);
        let queries = default_queries(&d.coll, o.queries.max(200), o.seed);
        assert!(!queries.is_empty(), "no workload for {}", d.name);
        let writes = mixed_stream(
            &d.coll,
            &MixedSpec {
                write_fraction: 1.0,
                insert_fraction: 0.7,
                query: WorkloadSpec::default(),
            },
            2_000,
            o.seed ^ 0x5eed,
        );
        println!(
            "{:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "readers", "queries/s", "p50 [µs]", "p95 [µs]", "p99 [µs]", "rejected", "writes"
        );
        for readers in [1usize, 2, 4, 8] {
            let store = Arc::new(EpochStore::new(
                IrHintPerf::build(&d.coll),
                d.coll.len() as u64,
                EpochConfig {
                    validator: Some(Box::new(|i: &IrHintPerf| i.validate().len())),
                    ..Default::default()
                },
            ));
            let pool = Arc::new(QueryPool::new(Arc::clone(&store), PoolConfig::default()));

            // The live writer replays its script once, then keeps the
            // store flushed until the readers are done.
            let readers_done = Arc::new(AtomicBool::new(false));
            let applied = Arc::new(AtomicU64::new(0));
            let writer = {
                let store = Arc::clone(&store);
                let done = Arc::clone(&readers_done);
                let applied = Arc::clone(&applied);
                let writes = writes.clone();
                // Deletes in the stream carry only ids; the writer keeps
                // the live-object catalog to resolve them, like a real
                // ingester would.
                let mut catalog: std::collections::HashMap<u32, Object> = d
                    .coll
                    .objects()
                    .iter()
                    .map(|obj| (obj.id, obj.clone()))
                    .collect();
                std::thread::spawn(move || {
                    for op in &writes {
                        if done.load(Ordering::Relaxed) {
                            break;
                        }
                        let write = match op {
                            Op::Insert(obj) => {
                                catalog.insert(obj.id, obj.clone());
                                WriteOp::Insert(obj.clone())
                            }
                            Op::Delete(id) => {
                                let obj = catalog.remove(id).expect("stream deletes live ids");
                                WriteOp::Delete(obj)
                            }
                            Op::Query(_) => unreachable!("write-only stream"),
                        };
                        loop {
                            match store.enqueue(write.clone()) {
                                Ok(()) => break,
                                Err(Rejected::Overloaded) => std::thread::yield_now(),
                                Err(Rejected::Closed) => return,
                                Err(Rejected::Degraded) => {
                                    panic!("in-memory store degraded")
                                }
                            }
                        }
                        applied.fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = store.flush();
                })
            };

            let t0 = Instant::now();
            let (histogram, answered, rejected) = std::thread::scope(|s| {
                let mut joins = Vec::new();
                for r in 0..readers {
                    let pool = Arc::clone(&pool);
                    let queries = &queries;
                    joins.push(s.spawn(move || {
                        let mut hist = LatencyHistogram::new();
                        let mut rejected = 0u64;
                        // Stagger each reader's start offset so they
                        // don't march through the workload in lockstep.
                        for i in r..r + queries.len() {
                            let q = queries[i % queries.len()].clone();
                            let tq = Instant::now();
                            match pool.execute(q) {
                                Ok(reply) => {
                                    std::hint::black_box(reply.ids.len());
                                    hist.record(
                                        tq.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
                                    );
                                }
                                Err(Rejected::Overloaded) => rejected += 1,
                                Err(Rejected::Closed) => break,
                                Err(Rejected::Degraded) => {
                                    panic!("in-memory store degraded")
                                }
                            }
                        }
                        (hist, rejected)
                    }));
                }
                let mut histogram = LatencyHistogram::new();
                let mut rejected = 0u64;
                for j in joins {
                    let (h, rej) = j.join().expect("reader thread");
                    histogram.merge(&h);
                    rejected += rej;
                }
                (histogram.clone(), histogram.count(), rejected)
            });
            let elapsed = t0.elapsed().as_secs_f64();
            readers_done.store(true, Ordering::Relaxed);
            writer.join().expect("writer thread");

            let violations = store.stats().violations.load(Ordering::Relaxed);
            assert_eq!(violations, 0, "post-swap validation failed");
            let qps = answered as f64 / elapsed.max(1e-9);
            let (p50, p95, p99) = (
                histogram.quantile(0.50) as f64 / 1_000.0,
                histogram.quantile(0.95) as f64 / 1_000.0,
                histogram.quantile(0.99) as f64 / 1_000.0,
            );
            let writes_applied = applied.load(Ordering::Relaxed);
            println!(
                "{readers:>8} {qps:>12.0} {p50:>10.1} {p95:>10.1} {p99:>10.1} {rejected:>10} {writes_applied:>10}"
            );
            records.push(Json::obj(vec![
                ("dataset", Json::str(d.name)),
                ("method", Json::str("irhint-perf")),
                ("readers", Json::Int(readers as u64)),
                ("queries", Json::Int(answered)),
                ("qps", Json::Num(qps)),
                ("p50_us", Json::Num(p50)),
                ("p95_us", Json::Num(p95)),
                ("p99_us", Json::Num(p99)),
                ("rejected", Json::Int(rejected)),
                ("writes_applied", Json::Int(writes_applied)),
                ("epoch", Json::Int(store.snapshot().epoch)),
                (
                    "size_bytes",
                    Json::Int(store.snapshot().index.size_bytes() as u64),
                ),
            ]));
        }
    }
    let doc = Json::obj(vec![
        ("tool", Json::str("repro serve")),
        ("runs", Json::Arr(records)),
    ]);
    if let Err(e) = std::fs::write("BENCH_serve.json", format!("{doc}\n")) {
        eprintln!("could not write BENCH_serve.json: {e}");
    } else {
        eprintln!("wrote BENCH_serve.json");
    }
}

/// Runs every experiment in paper order.
pub fn all(o: &Opts) {
    table3(o);
    fig8(o);
    fig9(o);
    fig10(o);
    table5(o);
    fig11(o);
    fig12(o);
    table6(o);
    table7(o);
}
