//! # tir-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 5). The [`experiments`] module contains one
//! function per table/figure; the `repro` binary dispatches them:
//!
//! ```text
//! cargo run --release -p tir-bench --bin repro -- all --scale 1.0
//! cargo run --release -p tir-bench --bin repro -- fig11 --queries 2000
//! ```
//!
//! Scales are fractions of the harness defaults, which are laptop-sized
//! versions of the paper's datasets (see DESIGN.md for the substitution
//! rationale).

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use harness::{
    build_method, datasets, par_throughput, throughput, BuildStats, Dataset, Method,
};
