//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale S] [--queries N] [--seed K]
//!
//! experiments: table3 fig8 fig9 fig10 table5 fig11 fig12 table6 table7 serve all
//! ```

use tir_bench::experiments::{self, Opts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp: Option<String> = None;
    let mut opts = Opts::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = args[i].parse().expect("--scale takes a number");
            }
            "--queries" => {
                i += 1;
                opts.queries = args[i].parse().expect("--queries takes a count");
            }
            "--seed" => {
                i += 1;
                opts.seed = args[i].parse().expect("--seed takes a u64");
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other if exp.is_none() && !other.starts_with('-') => {
                exp = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let Some(exp) = exp else {
        usage();
        std::process::exit(2);
    };

    eprintln!(
        "[repro] experiment={exp} scale={} queries={} seed={}",
        opts.scale, opts.queries, opts.seed
    );
    match exp.as_str() {
        "table3" => experiments::table3(&opts),
        "fig8" => experiments::fig8(&opts),
        "fig9" => experiments::fig9(&opts),
        "fig10" => experiments::fig10(&opts),
        "table5" => experiments::table5(&opts),
        "fig11" => experiments::fig11(&opts),
        "fig12" => experiments::fig12(&opts),
        "table6" => experiments::table6(&opts),
        "table7" => experiments::table7(&opts),
        "irhint-mtune" => experiments::irhint_mtune(&opts),
        "serve" => experiments::serve(&opts),
        "all" => experiments::all(&opts),
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: repro <table3|fig8|fig9|fig10|table5|fig11|fig12|table6|table7|serve|all> \
         [--scale S] [--queries N] [--seed K]"
    );
}
