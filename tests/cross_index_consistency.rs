//! Integration tests spanning crates: generated datasets (tir-datagen)
//! indexed by every method (tir-core) must agree with the oracle and with
//! each other, before and after updates.

use temporal_ir::core::prelude::*;
use temporal_ir::datagen::{
    eclog_like, generate, selectivity_binned, wikipedia_like, workload, ElemSource, Extent,
    SyntheticConfig, WorkloadSpec,
};

fn all_indexes(coll: &Collection) -> Vec<Box<dyn TemporalIrIndex>> {
    vec![
        Box::new(Tif::build(coll)),
        Box::new(TifSlicing::build(coll)),
        Box::new(TifSharding::build(coll)),
        Box::new(TifHint::build(coll, TifHintConfig::binary_search())),
        Box::new(TifHint::build(coll, TifHintConfig::merge_sort())),
        Box::new(TifHintSlicing::build(coll)),
        Box::new(IrHintPerf::build(coll)),
        Box::new(IrHintSize::build(coll)),
    ]
}

fn assert_all_agree(coll: &Collection, queries: &[TimeTravelQuery], ctx: &str) {
    let oracle = BruteForce::build(coll.objects());
    for index in all_indexes(coll) {
        for q in queries {
            let mut got = index.query(q);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "[{ctx}] {} emitted duplicates", index.name());
            assert_eq!(
                got,
                oracle.answer(q),
                "[{ctx}] {} vs oracle, q={q:?}",
                index.name()
            );
        }
    }
}

#[test]
fn agree_on_synthetic_default_shape() {
    let coll = generate(&SyntheticConfig::default().scaled(0.002));
    let mut queries = Vec::new();
    for extent in [
        Extent::Stabbing,
        Extent::Fraction(0.001),
        Extent::Fraction(0.05),
        Extent::Fraction(1.0),
    ] {
        for num_elems in [1usize, 3, 5] {
            queries.extend(workload(
                &coll,
                &WorkloadSpec {
                    extent,
                    num_elems,
                    source: ElemSource::SeedObject,
                },
                5,
                77,
            ));
        }
    }
    assert!(queries.len() >= 50);
    assert_all_agree(&coll, &queries, "synthetic");
}

#[test]
fn agree_on_eclog_shape() {
    let coll = eclog_like(0.01, 5);
    let queries = workload(&coll, &WorkloadSpec::default(), 30, 5);
    assert_all_agree(&coll, &queries, "eclog");
}

#[test]
fn agree_on_wikipedia_shape() {
    let coll = wikipedia_like(0.003, 5);
    let queries = workload(&coll, &WorkloadSpec::default(), 30, 5);
    assert_all_agree(&coll, &queries, "wikipedia");
}

#[test]
fn agree_on_frequency_bin_workloads() {
    let coll = eclog_like(0.01, 9);
    let mut queries = Vec::new();
    for (lo, hi) in [(0.0, 0.1), (0.1, 1.0), (1.0, 10.0), (10.0, 100.0)] {
        queries.extend(workload(
            &coll,
            &WorkloadSpec {
                extent: Extent::Fraction(0.001),
                num_elems: 2,
                source: ElemSource::FreqBin {
                    lo_pct: lo,
                    hi_pct: hi,
                },
            },
            10,
            13,
        ));
    }
    assert!(!queries.is_empty());
    assert_all_agree(&coll, &queries, "freq-bins");
}

#[test]
fn agree_on_selectivity_binned_workloads() {
    let coll = eclog_like(0.008, 21);
    let probe = Tif::build(&coll);
    let bins = selectivity_binned(&coll, &probe, 8, 3);
    let queries: Vec<TimeTravelQuery> = bins.into_iter().flatten().collect();
    assert!(queries.len() >= 16);
    assert_all_agree(&coll, &queries, "selectivity");
}

#[test]
fn agree_after_90_10_update_split() {
    // The Table 6 protocol: index 90% offline, insert the rest, then
    // delete some — answers must track the oracle throughout.
    let coll = generate(&SyntheticConfig::default().scaled(0.001));
    let (offline, batch) = coll.split_for_updates(0.10);

    let mut indexes = all_indexes(&offline);
    let mut oracle = BruteForce::build(offline.objects());
    for o in &batch {
        oracle.insert(o);
        for idx in indexes.iter_mut() {
            idx.insert(o);
        }
    }
    // Delete every 7th original object.
    for i in (0..offline.len()).step_by(7) {
        let victim = offline.get(i as u32);
        assert!(oracle.delete(victim));
        for idx in indexes.iter_mut() {
            assert!(idx.delete(victim), "{} failed to delete {i}", idx.name());
        }
    }
    let queries = workload(&coll, &WorkloadSpec::default(), 25, 31);
    for idx in &indexes {
        for q in &queries {
            let mut got = idx.query(q);
            got.sort_unstable();
            assert_eq!(got, oracle.answer(q), "{} after updates", idx.name());
        }
    }
}

#[test]
fn queries_past_the_indexed_domain_are_safe() {
    let coll = eclog_like(0.005, 2);
    let d = coll.domain();
    let oracle = BruteForce::build(coll.objects());
    let probe_elem = coll
        .objects()
        .iter()
        .flat_map(|o| o.desc.iter().copied())
        .next()
        .unwrap();
    let queries = vec![
        TimeTravelQuery::new(0, u64::MAX, vec![probe_elem]),
        TimeTravelQuery::new(d.end + 10, d.end + 20, vec![probe_elem]),
        TimeTravelQuery::new(0, 0, vec![probe_elem]),
    ];
    for idx in all_indexes(&coll) {
        for q in &queries {
            let mut got = idx.query(q);
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, oracle.answer(q), "{} q={q:?}", idx.name());
        }
    }
}

#[test]
fn batch_insert_override_equals_one_by_one() {
    // The irHINT variants override insert_batch with a merge-rebuild; it
    // must be indistinguishable from the default per-object path.
    let coll = generate(&SyntheticConfig::default().scaled(0.001));
    let (offline, batch) = coll.split_for_updates(0.2);
    let queries = workload(&coll, &WorkloadSpec::default(), 25, 19);

    let mut batched_perf = IrHintPerf::build(&offline);
    batched_perf.insert_batch(&batch);
    let mut single_perf = IrHintPerf::build(&offline);
    for o in &batch {
        single_perf.insert(o);
    }
    let mut batched_size = IrHintSize::build(&offline);
    batched_size.insert_batch(&batch);
    let mut single_size = IrHintSize::build(&offline);
    for o in &batch {
        single_size.insert(o);
    }
    let oracle = BruteForce::build(coll.objects());
    for q in &queries {
        let want = oracle.answer(q);
        for idx in [
            &batched_perf as &dyn TemporalIrIndex,
            &single_perf,
            &batched_size,
            &single_size,
        ] {
            let mut got = idx.query(q);
            got.sort_unstable();
            assert_eq!(got, want, "{} q={q:?}", idx.name());
        }
    }
}
