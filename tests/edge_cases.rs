//! Degenerate-input integration tests: every index must behave on empty
//! collections, single objects, identical intervals, point domains and
//! adversarial queries.

use temporal_ir::core::prelude::*;

fn build_all(coll: &Collection) -> Vec<Box<dyn TemporalIrIndex>> {
    vec![
        Box::new(Tif::build(coll)),
        Box::new(TifSlicing::build(coll)),
        Box::new(TifSharding::build(coll)),
        Box::new(TifHint::build(coll, TifHintConfig::binary_search())),
        Box::new(TifHint::build(coll, TifHintConfig::merge_sort())),
        Box::new(TifHintSlicing::build(coll)),
        Box::new(IrHintPerf::build(coll)),
        Box::new(IrHintSize::build(coll)),
    ]
}

#[test]
fn empty_collection() {
    let coll = Collection::new(vec![]);
    for idx in build_all(&coll) {
        assert!(
            idx.query(&TimeTravelQuery::new(0, 100, vec![0])).is_empty(),
            "{}",
            idx.name()
        );
        assert!(idx.query(&TimeTravelQuery::new(0, 100, vec![])).is_empty());
    }
}

#[test]
fn empty_collection_supports_inserts() {
    let coll = Collection::with_domain_hint(vec![], 0, 1000);
    let q = TimeTravelQuery::new(40, 60, vec![1, 2]);
    for mut idx in build_all(&coll) {
        idx.insert(&Object::new(0, 50, 55, vec![1, 2, 3]));
        idx.insert(&Object::new(1, 70, 90, vec![1, 2]));
        let got = idx.query(&q);
        assert_eq!(got, vec![0], "{}", idx.name());
    }
}

#[test]
fn single_object_all_queries() {
    let coll = Collection::new(vec![Object::new(0, 10, 20, vec![5])]);
    for idx in build_all(&coll) {
        assert_eq!(idx.query(&TimeTravelQuery::new(20, 30, vec![5])), vec![0]);
        assert_eq!(idx.query(&TimeTravelQuery::new(0, 10, vec![5])), vec![0]);
        assert!(idx.query(&TimeTravelQuery::new(21, 30, vec![5])).is_empty());
        assert!(idx.query(&TimeTravelQuery::new(10, 20, vec![4])).is_empty());
        assert_eq!(
            idx.query(&TimeTravelQuery::new(15, 15, vec![5, 5, 5])),
            vec![0]
        );
    }
}

#[test]
fn identical_intervals_mass() {
    // Everything in one partition: stresses single-division paths.
    let objects: Vec<Object> = (0..500u32)
        .map(|i| Object::new(i, 100, 200, vec![i % 3, 3 + i % 5]))
        .collect();
    let coll = Collection::new(objects);
    let oracle = BruteForce::build(coll.objects());
    for idx in build_all(&coll) {
        for q in [
            TimeTravelQuery::new(150, 150, vec![0, 3]),
            TimeTravelQuery::new(0, 99, vec![0]),
            TimeTravelQuery::new(200, 300, vec![1, 4]),
        ] {
            let mut got = idx.query(&q);
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, oracle.answer(&q), "{} q={q:?}", idx.name());
        }
    }
}

#[test]
fn point_domain() {
    // All timestamps identical: domain has a single raw value.
    let objects: Vec<Object> = (0..50u32)
        .map(|i| Object::new(i, 7, 7, vec![i % 4]))
        .collect();
    let coll = Collection::new(objects);
    let oracle = BruteForce::build(coll.objects());
    for idx in build_all(&coll) {
        for q in [
            TimeTravelQuery::new(7, 7, vec![2]),
            TimeTravelQuery::new(0, 100, vec![0, 1]),
            TimeTravelQuery::new(8, 9, vec![0]),
        ] {
            let mut got = idx.query(&q);
            got.sort_unstable();
            assert_eq!(got, oracle.answer(&q), "{} q={q:?}", idx.name());
        }
    }
}

#[test]
fn huge_sparse_domain() {
    // Timestamps near u63 bounds with huge gaps: discretization must not
    // overflow or collide fatally.
    let big = 1u64 << 62;
    let objects = vec![
        Object::new(0, 0, 10, vec![1]),
        Object::new(1, big, big + 5, vec![1]),
        Object::new(2, big / 2, big / 2 + 1_000_000, vec![1, 2]),
    ];
    let coll = Collection::new(objects);
    let oracle = BruteForce::build(coll.objects());
    for idx in build_all(&coll) {
        for q in [
            TimeTravelQuery::new(0, 5, vec![1]),
            TimeTravelQuery::new(big, big, vec![1]),
            TimeTravelQuery::new(0, u64::MAX, vec![1]),
            TimeTravelQuery::new(big / 2 + 10, big / 2 + 20, vec![2]),
        ] {
            let mut got = idx.query(&q);
            got.sort_unstable();
            assert_eq!(got, oracle.answer(&q), "{} q={q:?}", idx.name());
        }
    }
}

#[test]
fn delete_everything_then_insert_again() {
    let objects: Vec<Object> = (0..40u32)
        .map(|i| Object::new(i, i as u64 * 10, i as u64 * 10 + 25, vec![i % 2, 2]))
        .collect();
    let coll = Collection::new(objects);
    let q = TimeTravelQuery::new(0, 1000, vec![2]);
    for mut idx in build_all(&coll) {
        for o in coll.objects() {
            assert!(idx.delete(o), "{}", idx.name());
        }
        assert!(idx.query(&q).is_empty(), "{} after full delete", idx.name());
        // Fresh ids after the tombstoned range.
        idx.insert(&Object::new(100, 50, 60, vec![2]));
        assert_eq!(idx.query(&q), vec![100], "{}", idx.name());
    }
}

#[test]
fn duplicate_elements_in_query_and_description() {
    let coll = Collection::new(vec![
        Object::new(0, 0, 10, vec![3, 3, 1, 1]), // Object::new dedups
        Object::new(1, 5, 15, vec![1]),
    ]);
    assert_eq!(coll.get(0).desc, vec![1, 3]);
    for idx in build_all(&coll) {
        let mut got = idx.query(&TimeTravelQuery::new(0, 20, vec![1, 1, 1]));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1], "{}", idx.name());
    }
}
