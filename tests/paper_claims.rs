//! Qualitative claims of the paper, asserted as integration tests: these
//! pin the *shape* the benchmarks must reproduce (who is smaller, who
//! replicates, which knob moves what).

use temporal_ir::core::prelude::*;
use temporal_ir::datagen::{eclog_like, generate, workload, SyntheticConfig, WorkloadSpec};
use temporal_ir::hint::{
    brute_force_overlap, Grid1D, Hint, HintConfig, IntervalRecord, IntervalTree,
};

fn test_collection() -> Collection {
    generate(&SyntheticConfig::default().scaled(0.002))
}

#[test]
fn irhint_size_variant_is_smaller_than_perf_variant() {
    // Section 4.2: decoupling the temporal attribute stores it once per
    // division entry instead of once per (entry, element).
    let coll = eclog_like(0.01, 3);
    let perf = IrHintPerf::build_with_m(&coll, 6);
    let size = IrHintSize::build_with_m(&coll, 6);
    assert!(
        (size.size_bytes() as f64) < 0.8 * perf.size_bytes() as f64,
        "size {} vs perf {}",
        size.size_bytes(),
        perf.size_bytes()
    );
}

#[test]
fn sharding_has_no_replication() {
    // Section 2.2: sharding groups by t_st, "completely avoiding the need
    // for replication".
    let coll = test_collection();
    let sharding = TifSharding::build(&coll);
    let raw_postings: usize = coll.objects().iter().map(|o| o.desc.len()).sum();
    assert_eq!(sharding.num_postings(), raw_postings);
}

#[test]
fn slicing_replication_grows_with_slice_count() {
    let coll = test_collection();
    let raw_postings: usize = coll.objects().iter().map(|o| o.desc.len()).sum();
    let k1 = TifSlicing::build_with_slices(&coll, 1);
    let k64 = TifSlicing::build_with_slices(&coll, 64);
    assert_eq!(k1.num_postings(), raw_postings);
    assert!(k64.num_postings() > k1.num_postings());
}

#[test]
fn hint_beats_flat_structures_on_small_range_queries() {
    // The motivation for using HINT at all ([19, 20]): on selective range
    // queries it touches far fewer entries than a coarse grid. We assert
    // the *work* proxy (query time) is no worse than 1D-grid with few
    // cells; absolute speedups are for the criterion benches.
    let n = 60_000u32;
    let records: Vec<IntervalRecord> = (0..n)
        .map(|i| {
            let st = (i as u64 * 2654435761) % 1_000_000;
            IntervalRecord {
                id: i,
                st,
                end: st + 1 + (i as u64 % 500),
            }
        })
        .collect();
    let hint = Hint::build(&records, HintConfig::default());
    let grid = Grid1D::build(&records, 8);
    let tree = IntervalTree::build(&records);

    let queries: Vec<(u64, u64)> = (0..200)
        .map(|i| {
            let st = (i * 4999) % 990_000;
            (st, st + 1000)
        })
        .collect();

    let time = |f: &dyn Fn(u64, u64) -> Vec<u32>| {
        let t0 = std::time::Instant::now();
        let mut total = 0;
        for &(a, b) in &queries {
            total += f(a, b).len();
        }
        (total, t0.elapsed())
    };
    let (h_total, h_time) = time(&|a, b| hint.range_query(a, b));
    let (g_total, g_time) = time(&|a, b| grid.range_query(a, b));
    let (t_total, _) = time(&|a, b| tree.range_query(a, b));
    assert_eq!(h_total, g_total);
    assert_eq!(h_total, t_total);
    assert!(
        h_time < g_time,
        "HINT {h_time:?} should beat a coarse grid {g_time:?} on selective queries"
    );
}

#[test]
fn all_interval_indexes_agree_with_each_other() {
    let records: Vec<IntervalRecord> = (0..5000u32)
        .map(|i| {
            let st = (i as u64 * 48271) % 100_000;
            IntervalRecord {
                id: i,
                st,
                end: st + (i as u64 % 997),
            }
        })
        .collect();
    let hint = Hint::build(&records, HintConfig::default());
    let grid = Grid1D::build(&records, 33);
    let tree = IntervalTree::build(&records);
    for q in [
        (0u64, 10u64),
        (500, 50_000),
        (99_000, 120_000),
        (12_345, 12_345),
    ] {
        let want = brute_force_overlap(&records, q.0, q.1);
        for (name, mut got) in [
            ("hint", hint.range_query(q.0, q.1)),
            ("grid", grid.range_query(q.0, q.1)),
            ("tree", tree.range_query(q.0, q.1)),
        ] {
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, want, "{name} q={q:?}");
        }
    }
}

#[test]
fn less_selective_queries_are_slower_for_every_method() {
    // Section 5.4: throughput drops as the query interval extent grows.
    let coll = eclog_like(0.02, 11);
    let narrow = workload(
        &coll,
        &WorkloadSpec {
            extent: temporal_ir::datagen::Extent::Fraction(0.001),
            ..Default::default()
        },
        150,
        1,
    );
    let wide = workload(
        &coll,
        &WorkloadSpec {
            extent: temporal_ir::datagen::Extent::Fraction(0.5),
            ..Default::default()
        },
        150,
        1,
    );
    let idx = IrHintPerf::build(&coll);
    let run = |qs: &[TimeTravelQuery]| {
        let t0 = std::time::Instant::now();
        let mut n = 0;
        for q in qs {
            n += idx.query(q).len();
        }
        (n, t0.elapsed())
    };
    let (n_narrow, t_narrow) = run(&narrow);
    let (n_wide, t_wide) = run(&wide);
    assert!(n_wide > n_narrow, "wide queries must return more");
    assert!(t_wide > t_narrow, "wide queries must cost more");
}

#[test]
fn merge_sort_variant_builds_faster_than_binary_search_variant() {
    // Table 5 discussion: the merge-sort variant has the lowest
    // construction time among the tIF+HINT family because ids arrive in
    // order and no beneficial re-sorting happens... while the
    // binary-search variant uses a larger m (10 vs 5) and sorts.
    let coll = eclog_like(0.02, 13);
    let t0 = std::time::Instant::now();
    let _bs = TifHint::build(&coll, TifHintConfig::binary_search());
    let t_bs = t0.elapsed();
    let t0 = std::time::Instant::now();
    let _ms = TifHint::build(&coll, TifHintConfig::merge_sort());
    let t_ms = t0.elapsed();
    assert!(t_ms < t_bs, "ms {t_ms:?} vs bs {t_bs:?}");
}

#[test]
fn running_example_reproduces_figure_structures() {
    // Figure 2 (slicing, 4 slices) / Figure 3 (sharding) / Figure 5
    // (tIF+HINT) / Figure 6+Table 2 (irHINT) all answer the canonical
    // query with {o2, o4, o7}.
    let coll = Collection::running_example();
    let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
    let answers: Vec<Vec<ObjectId>> = vec![
        {
            let i = TifSlicing::build_with_slices(&coll, 4);
            let mut a = i.query(&q);
            a.sort_unstable();
            a
        },
        {
            let i = TifSharding::build(&coll);
            let mut a = i.query(&q);
            a.sort_unstable();
            a
        },
        {
            let i = TifHint::build(
                &coll,
                TifHintConfig {
                    strategy: IntersectStrategy::BinarySearch,
                    m: 3,
                },
            );
            let mut a = i.query(&q);
            a.sort_unstable();
            a
        },
        {
            let i = IrHintPerf::build_with_m(&coll, 3);
            let mut a = i.query(&q);
            a.sort_unstable();
            a
        },
        {
            let i = IrHintSize::build_with_m(&coll, 3);
            let mut a = i.query(&q);
            a.sort_unstable();
            a
        },
    ];
    for a in answers {
        assert_eq!(a, vec![1, 3, 6]);
    }
    // I[a] of the base tIF contains o1, o2, o4, o7 (Section 2.2).
    let tif = Tif::build(&coll);
    assert_eq!(tif.list(0).unwrap().ids, vec![0, 1, 3, 6]);
}
