//! # temporal-ir
//!
//! Facade crate for the temporal information retrieval workspace: fast
//! indexing for *time-travel IR queries* — retrieve all objects whose time
//! interval overlaps a query interval and whose description contains all
//! query elements (Rauch & Bouros, "Fast Indexing for Temporal Information
//! Retrieval").
//!
//! Re-exports the substrates and index implementations:
//!
//! * [`hint`] — the HINT interval index and baselines;
//! * [`invidx`] — the inverted-index substrate;
//! * [`core`] — the object model and the seven temporal-IR indexes;
//! * [`datagen`] — synthetic / real-world-shaped data and query workloads.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use tir_core as core;
pub use tir_datagen as datagen;
pub use tir_hint as hint;
pub use tir_invidx as invidx;

pub use tir_core::prelude::*;
