//! Market-basket analysis (the paper's third motivating scenario): basket
//! objects hold the products bought during one store visit; the interval
//! is the visit's time span. "Find all last-month visits where 'The
//! Shining', 'It' and 'Misery' were bought together."
//!
//! Also demonstrates choosing between methods by measuring them on *your*
//! workload, using the library's own harness-style timing.
//!
//! ```text
//! cargo run --release --example market_baskets
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_ir::core::prelude::*;
use temporal_ir::invidx::Dictionary;

fn main() {
    let mut dict = Dictionary::new();
    let shining = dict.intern("the-shining");
    let it = dict.intern("it");
    let misery = dict.intern("misery");
    // A long tail of other products.
    let tail: Vec<u32> = (0..2000)
        .map(|i| dict.intern(&format!("product-{i}")))
        .collect();

    let mut rng = StdRng::seed_from_u64(7);
    let minutes_per_day = 24 * 60;
    let horizon = 120 * minutes_per_day; // four months of visits

    let mut baskets = Vec::new();
    for id in 0..30_000u32 {
        let start = rng.gen_range(0..horizon - 90);
        let visit = rng.gen_range(5..90); // 5-90 minute visits
        let mut products: Vec<u32> = (0..rng.gen_range(1..12))
            .map(|_| tail[rng.gen_range(0..tail.len())])
            .collect();
        // King fans: ~2% of visits buy the whole trilogy of terror.
        if rng.gen_bool(0.02) {
            products.extend([shining, it, misery]);
        } else if rng.gen_bool(0.1) {
            products.push([shining, it, misery][rng.gen_range(0..3)]);
        }
        baskets.push(Object::new(id, start, start + visit, products));
    }
    let coll = Collection::new(baskets);

    // "Last month" = the final 30 days of the horizon.
    let last_month = TimeTravelQuery::new(
        horizon - 30 * minutes_per_day,
        horizon,
        vec![shining, it, misery],
    );

    // Measure two contenders on this workload before committing.
    let t0 = Instant::now();
    let ir = IrHintPerf::build(&coll);
    let build_ir = t0.elapsed();
    let t0 = Instant::now();
    let sharding = TifSharding::build(&coll);
    let build_sh = t0.elapsed();

    let time = |f: &dyn Fn() -> Vec<ObjectId>| {
        let t0 = Instant::now();
        let mut r = Vec::new();
        for _ in 0..200 {
            r = f();
        }
        (r, t0.elapsed().as_secs_f64() / 200.0)
    };
    let (mut hits_ir, t_ir) = time(&|| ir.query(&last_month));
    let (mut hits_sh, t_sh) = time(&|| sharding.query(&last_month));
    hits_ir.sort_unstable();
    hits_sh.sort_unstable();
    assert_eq!(hits_ir, hits_sh);

    println!(
        "{} baskets, horizon {} days",
        coll.len(),
        horizon / minutes_per_day
    );
    println!(
        "visits buying the full trilogy last month: {}",
        hits_ir.len()
    );
    println!(
        "irHINT(perf):  build {:>7.1?}, query {:>8.1}us, {:>7} KiB",
        build_ir,
        t_ir * 1e6,
        ir.size_bytes() / 1024
    );
    println!(
        "tIF+Sharding:  build {:>7.1?}, query {:>8.1}us, {:>7} KiB",
        build_sh,
        t_sh * 1e6,
        sharding.size_bytes() / 1024
    );

    // Spot-check one qualifying visit.
    if let Some(&id) = hits_ir.first() {
        let b = coll.get(id);
        for needed in [shining, it, misery] {
            assert!(b.desc.contains(&needed));
        }
        println!(
            "  e.g. visit {id}: day {}, {} products",
            b.interval.st / minutes_per_day,
            b.desc.len()
        );
    }
}
