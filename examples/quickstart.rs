//! Five-minute tour: build a collection, index it with every method,
//! answer a time-travel IR query, and apply updates.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use temporal_ir::core::prelude::*;
use temporal_ir::datagen::{workload, SyntheticConfig, WorkloadSpec};

fn main() {
    // 1. A collection: the paper's running example (Figure 1) — eight
    //    objects over the dictionary {a=0, b=1, c=2}.
    let coll = Collection::running_example();
    println!(
        "collection: {} objects, domain {:?}",
        coll.len(),
        coll.domain()
    );

    // 2. The canonical query: interval [5, 9] and q.d = {a, c}.
    let q = TimeTravelQuery::new(5, 9, vec![0, 2]);

    // 3. Every index answers it identically (objects o2, o4, o7).
    let indexes: Vec<Box<dyn TemporalIrIndex>> = vec![
        Box::new(Tif::build(&coll)),
        Box::new(TifSlicing::build_with_slices(&coll, 4)),
        Box::new(TifSharding::build(&coll)),
        Box::new(TifHint::build(&coll, TifHintConfig::merge_sort())),
        Box::new(TifHintSlicing::build_with_params(&coll, 3, 4)),
        Box::new(IrHintPerf::build(&coll)),
        Box::new(IrHintSize::build(&coll)),
    ];
    for idx in &indexes {
        let mut hits = idx.query(&q);
        hits.sort_unstable();
        println!("{:<18} -> {:?}", idx.name(), hits);
        assert_eq!(hits, vec![1, 3, 6]);
    }

    // 4. Updates: insert a matching object, delete another.
    let mut ir = IrHintPerf::build(&coll);
    let fresh = Object::new(8, 6, 8, vec![0, 2]);
    ir.insert(&fresh);
    assert!(ir.delete(coll.get(3)));
    let mut hits = ir.query(&q);
    hits.sort_unstable();
    println!("after updates        -> {hits:?}");
    assert_eq!(hits, vec![1, 6, 8]);

    // 5. Scaling up: a synthetic collection and a generated workload.
    let big = temporal_ir::datagen::generate(&SyntheticConfig::default().scaled(0.002));
    let queries = workload(&big, &WorkloadSpec::default(), 100, 1);
    let index = IrHintPerf::build(&big);
    let total: usize = queries.iter().map(|q| index.query(q).len()).sum();
    println!(
        "synthetic: {} objects, 100 queries, {} total results, index {} KiB",
        big.len(),
        total,
        index.size_bytes() / 1024
    );
}
