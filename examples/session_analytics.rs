//! Beyond boolean search: the library's extension features on one
//! workload — Allen-relationship analytics, temporal joins, relevance
//! ranking and compressed indexing over a fleet of support-chat sessions.
//!
//! ```text
//! cargo run --release --example session_analytics
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_ir::core::prelude::*;
use temporal_ir::core::{temporal_common_elements_join, CompressedTif, RankedQuery, RankedTif};
use temporal_ir::hint::{AllenRelation, DivisionOrder, Hint, HintConfig, IntervalRecord};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // 15K support sessions over one week (minute resolution); topics 0..60.
    let week = 7 * 24 * 60u64;
    let mut sessions = Vec::new();
    for id in 0..15_000u32 {
        let st = rng.gen_range(0..week - 120);
        let len = rng.gen_range(1..120u64);
        let topics: Vec<u32> = (0..rng.gen_range(1..6))
            .map(|_| rng.gen_range(0..60))
            .collect();
        sessions.push(Object::new(id, st, st + len, topics));
    }
    let coll = Collection::new(sessions);

    // ----- Allen analytics on the interval substrate -------------------
    // "Which sessions ran entirely within the Tuesday maintenance window,
    //  which ones were cut exactly at its start?"
    let records: Vec<IntervalRecord> = coll
        .objects()
        .iter()
        .map(|o| IntervalRecord {
            id: o.id,
            st: o.interval.st,
            end: o.interval.end,
        })
        .collect();
    let hint = Hint::build(
        &records,
        HintConfig {
            m: Some(8),
            order: DivisionOrder::Beneficial,
            storage_opt: false,
        },
    );
    let window = (2 * 24 * 60u64, 2 * 24 * 60 + 180); // Tuesday, 3h
    let during = hint.allen_query(AllenRelation::During, window.0, window.1);
    let meets = hint.allen_query(AllenRelation::Meets, window.0, window.1);
    let overlaps = hint.allen_query(AllenRelation::Overlaps, window.0, window.1);
    println!(
        "maintenance window: {} sessions fully inside, {} ended exactly at its start, {} ran into it",
        during.len(),
        meets.len(),
        overlaps.len()
    );

    // ----- Temporal join ------------------------------------------------
    // "Concurrent session pairs sharing >= 2 topics" (self-join on a
    // thinned sample to keep the demo quick).
    let sample = Collection::new(
        coll.objects()
            .iter()
            .take(2_000)
            .cloned()
            .collect::<Vec<_>>(),
    );
    let pairs = temporal_common_elements_join(&sample, &sample, 2);
    let off_diagonal = pairs.iter().filter(|p| p.left != p.right).count();
    println!("concurrent pairs sharing >=2 topics (2K-session sample): {off_diagonal}");

    // ----- Relevance ranking --------------------------------------------
    // "Most relevant sessions about topics {3, 17, 42} on Wednesday" —
    // partial matches allowed, rare topics weighted up.
    let ranked = RankedTif::build(&coll);
    let wednesday = (3 * 24 * 60u64, 4 * 24 * 60u64);
    let top = ranked.query_topk(&RankedQuery::new(
        wednesday.0,
        wednesday.1,
        vec![3, 17, 42],
        5,
    ));
    println!("top-5 ranked hits for topics {{3,17,42}} on Wednesday:");
    for hit in &top {
        let o = coll.get(hit.id);
        println!(
            "  session {:<6} score {:.3}  topics {:?}",
            hit.id, hit.score, o.desc
        );
    }
    assert!(top.windows(2).all(|w| w[0].score >= w[1].score));

    // ----- Compressed index ----------------------------------------------
    // Same answers, smaller footprint.
    let plain = Tif::build(&coll);
    let compressed = CompressedTif::build(&coll);
    let q = TimeTravelQuery::new(wednesday.0, wednesday.1, vec![3, 17]);
    let mut a = plain.query(&q);
    let mut b = compressed.query(&q);
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    println!(
        "boolean query agrees on plain tIF ({} KiB) and cTIF ({} KiB): {} results",
        plain.size_bytes() / 1024,
        compressed.size_bytes() / 1024,
        a.len()
    );
}
