//! Archive search (the paper's first motivating scenario): index document
//! *versions* — each valid from its creation until superseded — and
//! answer queries like "all revisions about the US elections valid some
//! time between 1980 and 2000".
//!
//! Demonstrates the string dictionary, version-interval modelling, and
//! how the answer contains versions (not distinct documents).
//!
//! ```text
//! cargo run --release --example archive_search
//! ```

use temporal_ir::core::prelude::*;
use temporal_ir::invidx::Dictionary;

/// Days since 1970-01-01 for a (year, month) — toy calendar, 30-day
/// months, good enough for an example.
fn day(year: u64, month: u64) -> u64 {
    (year - 1970) * 360 + (month - 1) * 30
}

struct Archive {
    dict: Dictionary,
    objects: Vec<Object>,
    titles: Vec<String>,
}

impl Archive {
    fn new() -> Self {
        Archive {
            dict: Dictionary::new(),
            objects: Vec::new(),
            titles: Vec::new(),
        }
    }

    /// Adds one version of an article: valid `[from, until]`, described by
    /// its terms.
    fn add_version(&mut self, title: &str, from: u64, until: u64, text: &str) {
        let id = self.objects.len() as u32;
        let terms = self.dict.intern_description(text.split_whitespace());
        self.objects.push(Object::new(id, from, until, terms));
        self.titles.push(title.to_owned());
    }

    fn collection(&self) -> Collection {
        Collection::new(self.objects.clone())
    }

    fn query(&self, from: u64, until: u64, keywords: &str) -> Option<TimeTravelQuery> {
        let elems: Option<Vec<u32>> = keywords
            .split_whitespace()
            .map(|t| self.dict.lookup(t))
            .collect();
        Some(TimeTravelQuery::new(from, until, elems?))
    }
}

fn main() {
    let mut archive = Archive::new();

    // "US elections" article: three revisions over the decades.
    archive.add_version(
        "US elections (rev 1)",
        day(1975, 1),
        day(1984, 6),
        "US elections president congress ballot",
    );
    archive.add_version(
        "US elections (rev 2)",
        day(1984, 6),
        day(1999, 2),
        "US elections president electoral college swing states",
    );
    archive.add_version(
        "US elections (rev 3)",
        day(1999, 2),
        day(2024, 1),
        "US elections president primaries electoral college",
    );
    // Distractors: overlap in time but not in terms, or vice versa.
    archive.add_version(
        "UK elections",
        day(1970, 1),
        day(2024, 1),
        "UK elections parliament prime minister",
    );
    archive.add_version(
        "US highways",
        day(1980, 1),
        day(1995, 1),
        "US interstate highways roads",
    );
    archive.add_version(
        "US elections (stale rev)",
        day(1970, 1),
        day(1979, 6),
        "US elections electors",
    );

    let coll = archive.collection();
    let index = IrHintPerf::build(&coll);

    // "Versions relevant to the US elections, valid 1980-01 .. 2000-12."
    let q = archive
        .query(day(1980, 1), day(2000, 12), "US elections")
        .expect("all keywords known");
    let mut hits = index.query(&q);
    hits.sort_unstable();

    println!("time-travel query: 'US elections' in [1980-01, 2000-12]");
    for id in &hits {
        let o = coll.get(*id);
        println!(
            "  #{id}: {:<24} valid [{}, {}]",
            archive.titles[*id as usize], o.interval.st, o.interval.end
        );
    }
    // Revisions 1-3 qualify (version semantics!); distractors don't.
    assert_eq!(hits, vec![0, 1, 2]);

    // The same query restricted to the 1970s finds only the stale rev.
    let q70s = archive
        .query(day(1970, 1), day(1979, 1), "US elections")
        .unwrap();
    let hits = index.query(&q70s);
    assert_eq!(hits.len(), 2, "rev 1 (from 1975) and the stale rev");

    // Unknown keyword: no lookup, no query.
    assert!(archive
        .query(day(1980, 1), day(2000, 1), "US blockchain")
        .is_none());
    println!("archive search OK");
}
