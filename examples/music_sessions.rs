//! Music IR (the paper's second motivating scenario): streaming sessions
//! as objects — each spans a listening period and its description holds
//! the ids of the streamed tracks. A time-travel IR query retrieves the
//! sessions where given tracks were all streamed within a time window,
//! e.g. "sessions with both 'Ode to Joy' and 'Für Elise' in January".
//!
//! Also shows picking an index by workload: many short sessions, frequent
//! catalog hits — and compares two methods for consistency.
//!
//! ```text
//! cargo run --release --example music_sessions
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_ir::core::prelude::*;

const HOUR: u64 = 60;
const DAY: u64 = 24 * HOUR;
const ODE_TO_JOY: u32 = 0;
const FUR_ELISE: u32 = 1;
const CATALOG: u32 = 500;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // 20K sessions over a 90-day window, minute resolution.
    let mut sessions = Vec::new();
    for id in 0..20_000u32 {
        let start = rng.gen_range(0..90 * DAY);
        let len = rng.gen_range(10..3 * HOUR);
        // 3-15 tracks; classics are popular (zipf-ish via modulo skew).
        let n_tracks = rng.gen_range(3..=15);
        let tracks: Vec<u32> = (0..n_tracks)
            .map(|_| {
                let r: f64 = rng.gen();
                ((r * r * CATALOG as f64) as u32).min(CATALOG - 1)
            })
            .collect();
        sessions.push(Object::new(id, start, start + len, tracks));
    }
    let coll = Collection::new(sessions);
    println!(
        "{} sessions, Ode-to-Joy plays in {} of them, Für-Elise in {}",
        coll.len(),
        coll.freq(ODE_TO_JOY),
        coll.freq(FUR_ELISE)
    );

    // January = days 0..31.
    let january = TimeTravelQuery::new(0, 31 * DAY, vec![ODE_TO_JOY, FUR_ELISE]);

    let ir = IrHintPerf::build(&coll);
    let slicing = TifSlicing::build(&coll);

    let mut a = ir.query(&january);
    let mut b = slicing.query(&january);
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "indexes must agree");
    println!(
        "sessions streaming both pieces overlapping January: {}",
        a.len()
    );

    // Verify a few hits by hand.
    for &id in a.iter().take(3) {
        let s = coll.get(id);
        assert!(s.interval.st <= 31 * DAY);
        assert!(s.desc.contains(&ODE_TO_JOY) && s.desc.contains(&FUR_ELISE));
        println!(
            "  session {id}: [{}m, {}m], {} tracks",
            s.interval.st,
            s.interval.end,
            s.desc.len()
        );
    }

    // Narrower window, more tracks: fewer results.
    let fussy = TimeTravelQuery::new(10 * DAY, 11 * DAY, vec![ODE_TO_JOY, FUR_ELISE, 2, 3]);
    println!(
        "one-day window, four tracks: {} sessions",
        ir.query(&fussy).len()
    );

    // Sessions keep arriving: incremental maintenance.
    let mut live = IrHintPerf::build(&coll);
    let new_session = Object::new(
        20_000,
        15 * DAY,
        15 * DAY + HOUR,
        vec![ODE_TO_JOY, FUR_ELISE],
    );
    live.insert(&new_session);
    let after = live.query(&january);
    assert_eq!(after.len(), a.len() + 1);
    println!("after inserting one more matching session: {}", after.len());
}
